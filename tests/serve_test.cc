// Serving-path suite: golden-prediction tests pinning serve::FrozenModel to
// the autograd forward bitwise, micro-batching / concurrency tests for
// serve::InferenceEngine (run under TSan via the `sanitize` label), edge-case
// notes through the raw-text pipeline, and unit tests for the LRU cache and
// serving stats.
#include <cmath>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "gtest/gtest.h"
#include "models/ak_ddn.h"
#include "models/bk_ddn.h"
#include "models/text_cnn.h"
#include "nn/serialization.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"

namespace kddn {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: one tiny cohort + dataset, one trained BK-DDN and AK-DDN.
// Built once per process (training is the slow part), used read-only by the
// golden tests.
// ---------------------------------------------------------------------------
struct TrainedWorld {
  kb::KnowledgeBase kb;
  std::unique_ptr<kb::ConceptExtractor> extractor;
  data::DatasetOptions data_options;
  data::MortalityDataset dataset;
  std::unique_ptr<models::BkDdn> bk;
  std::unique_ptr<models::AkDdn> ak;
};

TrainedWorld& World() {
  static TrainedWorld* world = [] {
    auto* w = new TrainedWorld();
    w->kb = kb::KnowledgeBase::BuildDefault();
    w->extractor = std::make_unique<kb::ConceptExtractor>(&w->kb);
    synth::CohortConfig config;
    config.num_patients = 200;
    config.seed = 33;
    const synth::Cohort cohort = synth::Cohort::Generate(config, w->kb);
    w->data_options.max_words = 96;
    w->data_options.max_concepts = 48;
    w->dataset =
        data::MortalityDataset::Build(cohort, *w->extractor, w->data_options);

    models::ModelConfig model_config;
    model_config.word_vocab_size = w->dataset.word_vocab().size();
    model_config.concept_vocab_size = w->dataset.concept_vocab().size();
    model_config.embedding_dim = 6;
    model_config.num_filters = 4;
    model_config.seed = 9;
    w->bk = std::make_unique<models::BkDdn>(model_config);
    w->ak = std::make_unique<models::AkDdn>(model_config);

    core::TrainOptions train_options;
    train_options.epochs = 2;
    train_options.batch_size = 16;
    core::Trainer trainer(train_options);
    trainer.Train(w->bk.get(), w->dataset.train(), w->dataset.validation(),
                  synth::Horizon::kInHospital);
    trainer.Train(w->ak.get(), w->dataset.train(), w->dataset.validation(),
                  synth::Horizon::kInHospital);
    return w;
  }();
  return *world;
}

/// The first up-to-`limit` test examples — enough length/content diversity to
/// exercise padding, both branches, and the attention shapes.
std::vector<data::Example> GoldenExamples(size_t limit = 12) {
  const auto& test = World().dataset.test();
  return {test.begin(),
          test.begin() + static_cast<long>(std::min(limit, test.size()))};
}

/// Autograd-path reference scores (the training graph, inference mode).
std::vector<float> ReferenceScores(models::NeuralDocumentModel* model,
                                   const std::vector<data::Example>& examples) {
  std::vector<float> scores;
  for (const data::Example& example : examples) {
    scores.push_back(model->PredictPositiveProbability(example));
  }
  return scores;
}

/// Restores the global pool size on scope exit so tests can't leak a resize.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : original_(GlobalThreadPoolSize()) {}
  ~PoolSizeGuard() { SetGlobalThreadPoolSize(original_); }

 private:
  int original_;
};

// ---------------------------------------------------------------------------
// Golden predictions: FrozenModel == autograd forward, bitwise, for both
// model kinds, at several thread counts, direct and through the engine at
// several batch shapes.
// ---------------------------------------------------------------------------
class GoldenPredictionTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  models::NeuralDocumentModel* Model() const {
    return std::string(std::get<0>(GetParam())) == "BK-DDN"
               ? static_cast<models::NeuralDocumentModel*>(World().bk.get())
               : static_cast<models::NeuralDocumentModel*>(World().ak.get());
  }
  int Threads() const { return std::get<1>(GetParam()); }
};

TEST_P(GoldenPredictionTest, FrozenMatchesAutogradBitwise) {
  PoolSizeGuard guard;
  const std::vector<data::Example> examples = GoldenExamples();
  const std::vector<float> reference = ReferenceScores(Model(), examples);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(*Model());

  SetGlobalThreadPoolSize(Threads());
  serve::FrozenModel::Workspace ws;
  for (size_t i = 0; i < examples.size(); ++i) {
    const float direct = frozen.ScorePositive(examples[i], &ws);
    EXPECT_EQ(direct, reference[i])
        << Model()->name() << " example " << i << " at " << Threads()
        << " threads: frozen forward diverged from the training graph";
  }
}

TEST_P(GoldenPredictionTest, EngineMatchesAutogradAtEveryBatchShape) {
  PoolSizeGuard guard;
  const std::vector<data::Example> examples = GoldenExamples();
  const std::vector<float> reference = ReferenceScores(Model(), examples);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(*Model());

  SetGlobalThreadPoolSize(Threads());
  for (int max_batch : {1, 3, 16}) {
    serve::EngineOptions options;
    options.max_batch = max_batch;
    options.flush_deadline_ms = 1;
    serve::InferenceEngine engine(&frozen, options);
    // Async-enqueue everything first so batches actually form, then resolve.
    std::vector<std::future<serve::Scored>> futures;
    for (const data::Example& example : examples) {
      futures.push_back(engine.ScoreAsync(example));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get().score, reference[i])
          << Model()->name() << " example " << i << ", max_batch "
          << max_batch << ", " << Threads() << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndThreads, GoldenPredictionTest,
    ::testing::Combine(::testing::Values("BK-DDN", "AK-DDN"),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Concurrency: many client threads scoring interleaved requests must each get
// bitwise-correct results (exercised under TSan via the sanitize label).
// ---------------------------------------------------------------------------
TEST(InferenceEngineTest, ConcurrentClientsGetBitwiseCorrectScores) {
  models::NeuralDocumentModel* model = World().ak.get();
  const std::vector<data::Example> examples = GoldenExamples();
  const std::vector<float> reference = ReferenceScores(model, examples);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(*model);

  serve::EngineOptions options;
  options.max_batch = 4;
  options.flush_deadline_ms = 2;
  serve::InferenceEngine engine(&frozen, options);

  constexpr int kClients = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        // Each client walks the examples at its own offset so batches mix
        // documents of different lengths.
        const size_t i = (static_cast<size_t>(c) + round) % examples.size();
        if (engine.Score(examples[i]) != reference[i]) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c << " saw diverging scores";
  }
  const serve::StatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.requests, kClients * kRounds);
  EXPECT_GT(stats.batches, 0);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
}

TEST(InferenceEngineTest, DestructorDrainsPendingRequests) {
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(*World().bk);
  const std::vector<data::Example> examples = GoldenExamples(4);
  std::vector<std::future<serve::Scored>> futures;
  {
    serve::EngineOptions options;
    options.max_batch = 64;
    options.flush_deadline_ms = 1000;  // Only shutdown can flush these.
    serve::InferenceEngine engine(&frozen, options);
    for (const data::Example& example : examples) {
      futures.push_back(engine.ScoreAsync(example));
    }
  }  // Destructor must score, not abandon, the queued requests.
  for (std::future<serve::Scored>& future : futures) {
    const float p = future.get().score;
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

// ---------------------------------------------------------------------------
// Raw-note edge cases through the full pipeline: every degenerate input must
// produce one well-defined, reproducible probability.
// ---------------------------------------------------------------------------
class NotePipelineTest : public ::testing::Test {
 protected:
  NotePipelineTest() : frozen_(serve::FrozenModel::Freeze(*World().ak)) {
    pipeline_.word_vocab = &World().dataset.word_vocab();
    pipeline_.concept_vocab = &World().dataset.concept_vocab();
    pipeline_.extractor = World().extractor.get();
    pipeline_.options = World().data_options;
  }

  serve::FrozenModel frozen_;
  serve::NotePipeline pipeline_;
};

TEST_F(NotePipelineTest, EdgeCaseNotesScoreWithoutCrashing) {
  serve::InferenceEngine engine(&frozen_, pipeline_);
  const std::vector<std::string> notes = {
      "",                                  // Empty.
      "?!... --- ,,, ;;; (((",             // Punctuation only.
      "the and of to a is are was been",   // Stop words only.
      "zzyzx qwfpgj xblorp vrisnak qq",    // Fully out-of-vocabulary.
      std::string(5000, 'x'),              // One absurd token.
      "pt w/ chf exacerbation, worsening pleural effusions bilaterally",
  };
  for (const std::string& note : notes) {
    const float p = engine.ScoreNote(note);
    EXPECT_TRUE(std::isfinite(p)) << "note: " << note.substr(0, 40);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    // Scoring the same note again is deterministic.
    EXPECT_EQ(engine.ScoreNote(note), p);
  }
}

TEST_F(NotePipelineTest, EmptyNoteEqualsPadTokenForward) {
  // The engine leaves degenerate id sequences empty and FrozenModel scores
  // them as a single <pad> token — which must equal the autograd forward on
  // an explicit pad-token example.
  serve::InferenceEngine engine(&frozen_, pipeline_);
  data::Example pad_example;
  pad_example.word_ids = {text::Vocabulary::kPadId};
  pad_example.concept_ids = {text::Vocabulary::kPadId};
  const float reference = World().ak->PredictPositiveProbability(pad_example);
  EXPECT_EQ(engine.ScoreNote(""), reference);
}

TEST_F(NotePipelineTest, RepeatedNotesHitTheConceptCache) {
  serve::EngineOptions options;
  options.cache_capacity = 8;
  serve::InferenceEngine engine(&frozen_, pipeline_, options);
  const std::string note = "worsening pleural effusion with chf";
  const float first = engine.ScoreNote(note);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.ScoreNote(note), first);
  }
  const serve::StatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 3);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate, 0.75);
}

TEST_F(NotePipelineTest, CacheDisabledStillScores) {
  serve::EngineOptions options;
  options.cache_capacity = 0;
  serve::InferenceEngine engine(&frozen_, pipeline_, options);
  const std::string note = "chf with pleural effusion";
  const float first = engine.ScoreNote(note);
  EXPECT_EQ(engine.ScoreNote(note), first);
  EXPECT_EQ(engine.stats().cache_hits, 0);
}

TEST_F(NotePipelineTest, EncodeNoteMatchesDatasetPipeline) {
  // A note that survives preprocessing must encode the way the training
  // pipeline would: lemmatized, stop-word-filtered in-vocabulary ids only.
  serve::InferenceEngine engine(&frozen_, pipeline_);
  const data::Example example =
      engine.EncodeNote("the patient has worsening effusions");
  for (int id : example.word_ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, World().dataset.word_vocab().size());
  }
  EXPECT_LE(static_cast<int>(example.word_ids.size()),
            World().data_options.max_words);
  EXPECT_LE(static_cast<int>(example.concept_ids.size()),
            World().data_options.max_concepts);
}

// ---------------------------------------------------------------------------
// Snapshot semantics: freezing deep-copies the weights and fingerprints them.
// ---------------------------------------------------------------------------
TEST(FrozenModelTest, SnapshotIsImmuneToLaterTraining) {
  models::ModelConfig config;
  config.word_vocab_size = 30;
  config.concept_vocab_size = 12;
  config.embedding_dim = 5;
  config.num_filters = 3;
  config.seed = 17;
  models::BkDdn model(config);

  data::Example example;
  example.word_ids = {2, 5, 9, 3};
  example.concept_ids = {2, 4};
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);
  const uint64_t fingerprint = frozen.fingerprint();
  serve::FrozenModel::Workspace ws;
  const float before = frozen.ScorePositive(example, &ws);

  // "Continue training": clobber every source weight.
  for (const ag::NodePtr& param : model.params().all()) {
    param->mutable_value().Fill(0.25f);
  }
  EXPECT_EQ(frozen.ScorePositive(example, &ws), before)
      << "snapshot shares storage with the live model";
  EXPECT_EQ(frozen.fingerprint(), fingerprint);

  // Re-freezing the mutated model must yield a different fingerprint and
  // (for this input) a different score.
  const serve::FrozenModel refrozen = serve::FrozenModel::Freeze(model);
  EXPECT_NE(refrozen.fingerprint(), fingerprint);
}

TEST(FrozenModelTest, FingerprintIdentifiesWeights) {
  models::ModelConfig config;
  config.word_vocab_size = 30;
  config.concept_vocab_size = 12;
  config.embedding_dim = 5;
  config.num_filters = 3;
  config.seed = 21;
  models::AkDdn a(config);
  config.seed = 22;
  models::AkDdn b(config);
  EXPECT_EQ(serve::FrozenModel::Freeze(a).fingerprint(),
            serve::FrozenModel::Freeze(a).fingerprint());
  EXPECT_NE(serve::FrozenModel::Freeze(a).fingerprint(),
            serve::FrozenModel::Freeze(b).fingerprint());
}

TEST(FrozenModelTest, SerializationRoundTripPreservesFrozenScores) {
  // train -> save -> load -> freeze must be bitwise equivalent to freezing
  // the original (the quickstart's snapshot flow).
  models::NeuralDocumentModel* original = World().bk.get();
  std::stringstream buffer;
  nn::SaveParameters(original->params(), buffer);

  models::BkDdn restored(original->config());
  nn::LoadParameters(&restored.params(), buffer);

  const serve::FrozenModel frozen_original =
      serve::FrozenModel::Freeze(*original);
  const serve::FrozenModel frozen_restored =
      serve::FrozenModel::Freeze(restored);
  EXPECT_EQ(frozen_original.fingerprint(), frozen_restored.fingerprint());
  serve::FrozenModel::Workspace ws;
  for (const data::Example& example : GoldenExamples(6)) {
    EXPECT_EQ(frozen_original.ScorePositive(example, &ws),
              frozen_restored.ScorePositive(example, &ws));
  }
}

TEST(FrozenModelTest, RejectsUnsupportedModels) {
  // Only the two dual-network architectures have frozen forwards.
  models::ModelConfig config;
  config.word_vocab_size = 10;
  config.concept_vocab_size = 10;
  config.embedding_dim = 4;
  config.num_filters = 2;
  models::TextCnn text_only(config);
  EXPECT_THROW(serve::FrozenModel::Freeze(text_only), KddnError);
}

// ---------------------------------------------------------------------------
// LRU cache unit tests.
// ---------------------------------------------------------------------------
TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  serve::LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_NE(cache.Get(1), nullptr);  // Touch 1 -> 2 becomes LRU.
  cache.Put(3, "three");             // Evicts 2.
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutOverwritesAndPromotes) {
  serve::LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // Overwrite promotes 1; 2 is now LRU.
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheTest, ClearEmptiesWithoutChangingCapacity) {
  serve::LruCache<int, int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(4, 4);
  ASSERT_NE(cache.Get(4), nullptr);
}

// ---------------------------------------------------------------------------
// Stats unit tests.
// ---------------------------------------------------------------------------
TEST(ServeStatsTest, PercentilesUseNearestRank) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(serve::PercentileOf(samples, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(serve::PercentileOf(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(serve::PercentileOf(samples, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(serve::PercentileOf(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::PercentileOf({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(serve::PercentileOf({7.0}, 0.99), 7.0);
}

TEST(ServeStatsTest, SnapshotAggregatesRecordings) {
  serve::Stats stats;
  for (int i = 1; i <= 4; ++i) {
    stats.RecordRequestLatencyMs(static_cast<double>(i));
  }
  stats.RecordBatch(3);
  stats.RecordBatch(1);
  stats.RecordCacheHit();
  stats.RecordCacheMiss();

  const serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, 4);
  EXPECT_EQ(snapshot.batches, 2);
  EXPECT_DOUBLE_EQ(snapshot.mean_batch_size, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.mean_latency_ms, 2.5);
  EXPECT_DOUBLE_EQ(snapshot.max_latency_ms, 4.0);
  EXPECT_DOUBLE_EQ(snapshot.p50_latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.cache_hit_rate, 0.5);
  ASSERT_GE(snapshot.batch_size_histogram.size(), 4u);
  EXPECT_EQ(snapshot.batch_size_histogram[1], 1);
  EXPECT_EQ(snapshot.batch_size_histogram[3], 1);
  // JSON line mentions every top-level field name.
  const std::string json = snapshot.ToJson();
  for (const char* key : {"requests", "batches", "cache_hit_rate",
                          "p50_latency_ms", "p99_latency_ms",
                          "mean_batch_size"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace kddn
