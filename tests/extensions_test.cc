// Tests for the beyond-the-paper extensions: NegEx-lite negation detection
// in the concept extractor and the APACHE/SAPS/SOFA-like structured severity
// scores.
#include <set>

#include "baselines/severity_scores.h"
#include "common/check.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"

namespace kddn {
namespace {

class NegationTest : public ::testing::Test {
 protected:
  NegationTest() : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    options_.detect_negation = true;
  }
  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  kb::ExtractionOptions options_;
};

TEST_F(NegationTest, MarksDirectNegation) {
  const auto mentions =
      extractor_.Extract("no pleural effusion is seen", options_);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].cui, "C0032227");
  EXPECT_TRUE(mentions[0].negated);
}

TEST_F(NegationTest, MarksDeniesAndWithout) {
  const auto a = extractor_.Extract("patient denies chest pain", options_);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(a[0].negated);
  const auto b = extractor_.Extract("without fever overnight", options_);
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(b[0].negated);
}

TEST_F(NegationTest, AffirmedMentionIsNotMarked) {
  const auto mentions =
      extractor_.Extract("worsening pleural effusion is seen", options_);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_FALSE(mentions[0].negated);
}

TEST_F(NegationTest, ScopeIsBoundedByTokens) {
  // Trigger too far away (> 6 tokens by default).
  const auto mentions = extractor_.Extract(
      "no other complaint were raised overnight by family except ongoing "
      "cough",
      options_);
  ASSERT_FALSE(mentions.empty());
  EXPECT_FALSE(mentions.back().negated);
}

TEST_F(NegationTest, ScopeIsBoundedBySentence) {
  const auto mentions = extractor_.Extract(
      "no acute event. pleural effusion persists", options_);
  ASSERT_FALSE(mentions.empty());
  // The effusion is in the next sentence, outside the negation scope.
  for (const auto& mention : mentions) {
    if (mention.cui == "C0032227") {
      EXPECT_FALSE(mention.negated);
    }
  }
}

TEST_F(NegationTest, PaperSentenceNegatesBothConcepts) {
  const auto mentions = extractor_.Extract(
      "there is no mediastinal vascular engorgement to suggest cardiac "
      "tamponade",
      options_);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_TRUE(mentions[0].negated);  // Engorgement, directly negated.
}

TEST_F(NegationTest, FilterNegatedDropsMentions) {
  kb::ExtractionOptions filter = options_;
  filter.filter_negated = true;
  const auto kept =
      extractor_.Extract("no pneumonia. worsening pulmonary edema", filter);
  std::set<std::string> cuis;
  for (const auto& mention : kept) {
    cuis.insert(mention.cui);
  }
  EXPECT_FALSE(cuis.count("C0032285"));  // Pneumonia dropped.
  EXPECT_TRUE(cuis.count("C0034063"));   // Edema kept.
}

TEST_F(NegationTest, OffByDefaultForMetaMapFidelity) {
  const auto mentions = extractor_.Extract("no pleural effusion is seen");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_FALSE(mentions[0].negated);  // Field untouched without the option.
}

class SeverityScoreTest : public ::testing::Test {
 protected:
  SeverityScoreTest() : kb_(kb::KnowledgeBase::BuildDefault()) {
    synth::CohortConfig config;
    config.num_patients = 2500;
    config.seed = 33;
    cohort_ = synth::Cohort::Generate(config, kb_);
  }
  kb::KnowledgeBase kb_;
  synth::Cohort cohort_;
};

TEST_F(SeverityScoreTest, NamesExist) {
  EXPECT_STREQ(
      baselines::SeverityScoreName(baselines::SeverityScoreKind::kApacheLike),
      "APACHE-like");
  EXPECT_STREQ(
      baselines::SeverityScoreName(baselines::SeverityScoreKind::kSofaLike),
      "SOFA-like");
}

TEST_F(SeverityScoreTest, ScoresAreBetterThanChanceButBelowTextModels) {
  // Structured scores see diagnoses + age but not the note trajectory, so
  // they should rank meaningfully above 0.5 yet stay clearly below the
  // Bayes ceiling (~0.9) — the paper's motivation for text-based models.
  for (auto kind : {baselines::SeverityScoreKind::kApacheLike,
                    baselines::SeverityScoreKind::kSapsLike,
                    baselines::SeverityScoreKind::kSofaLike}) {
    std::vector<float> scores;
    std::vector<int> labels;
    for (const synth::SyntheticPatient& patient : cohort_.patients()) {
      scores.push_back(static_cast<float>(
          baselines::SeverityScore(kind, patient, cohort_.panel())));
      labels.push_back(
          synth::IsPositive(patient.outcome, synth::Horizon::kWithinYear) ? 1
                                                                          : 0);
    }
    const double auc = eval::RocAuc(scores, labels);
    EXPECT_GT(auc, 0.60) << baselines::SeverityScoreName(kind);
    EXPECT_LT(auc, 0.85) << baselines::SeverityScoreName(kind);
  }
}

TEST_F(SeverityScoreTest, ApacheMonotoneInAgeAndDiagnoses) {
  synth::SyntheticPatient young, old;
  young.age = 30;
  old.age = 80;
  young.disease_indices = {0};
  old.disease_indices = {0};
  const double young_score = baselines::SeverityScore(
      baselines::SeverityScoreKind::kApacheLike, young, cohort_.panel());
  const double old_score = baselines::SeverityScore(
      baselines::SeverityScoreKind::kApacheLike, old, cohort_.panel());
  EXPECT_GT(old_score, young_score);

  synth::SyntheticPatient multimorbid = old;
  multimorbid.disease_indices = {0, 1, 2};
  EXPECT_GT(baselines::SeverityScore(baselines::SeverityScoreKind::kApacheLike,
                                     multimorbid, cohort_.panel()),
            old_score);
}

TEST_F(SeverityScoreTest, RejectsBadDiseaseIndex) {
  synth::SyntheticPatient bad;
  bad.disease_indices = {9999};
  EXPECT_THROW(
      baselines::SeverityScore(baselines::SeverityScoreKind::kSofaLike, bad,
                               cohort_.panel()),
      KddnError);
}

}  // namespace
}  // namespace kddn
