#include "models/ak_ddn.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "common/check.h"
#include "gtest/gtest.h"
#include "models/bk_ddn.h"
#include "models/dkgam.h"
#include "models/h_cnn.h"
#include "models/text_cnn.h"

namespace kddn::models {
namespace {

ModelConfig SmallConfig() {
  ModelConfig config;
  config.word_vocab_size = 30;
  config.concept_vocab_size = 12;
  config.embedding_dim = 6;
  config.num_filters = 4;
  config.seed = 3;
  return config;
}

data::Example SmallExample() {
  data::Example example;
  example.word_ids = {2, 5, 7, 2, 9, 11, 3, 4};
  example.concept_ids = {2, 4, 3};
  example.labels = {true, true, true};
  return example;
}

/// Checks logits shape, finiteness, and that gradients reach every parameter
/// tensor after one backward pass.
void CheckModelBasics(NeuralDocumentModel* model,
                      const data::Example& example) {
  nn::ForwardContext ctx;
  ctx.training = false;
  ag::NodePtr logits = model->Logits(example, ctx);
  ASSERT_EQ(logits->value().rank(), 1);
  ASSERT_EQ(logits->value().dim(0), 2);
  for (int j = 0; j < 2; ++j) {
    EXPECT_FALSE(std::isnan(logits->value().at(j)));
  }

  model->params().ZeroGrads();
  ag::Backward(ag::SoftmaxCrossEntropy(model->Logits(example, ctx), 1));
  int touched = 0;
  for (const ag::NodePtr& param : model->params().all()) {
    float norm = 0.0f;
    for (int64_t i = 0; i < param->grad().size(); ++i) {
      norm += std::fabs(param->grad()[i]);
    }
    touched += norm > 0.0f ? 1 : 0;
  }
  // Embedding tables only receive gradient at used rows; all weight matrices
  // should be touched.
  EXPECT_GE(touched, static_cast<int>(model->params().all().size()) - 1);

  const float prob = model->PredictPositiveProbability(example);
  EXPECT_GE(prob, 0.0f);
  EXPECT_LE(prob, 1.0f);
}

TEST(TextCnnTest, BasicsAndRepresentation) {
  TextCnn model(SmallConfig());
  CheckModelBasics(&model, SmallExample());
  Tensor rep = model.Represent(SmallExample());
  EXPECT_EQ(rep.rank(), 1);
  EXPECT_EQ(rep.dim(0), 4 * 3);  // filters x widths.
}

TEST(ConceptCnnTest, BasicsAndRepresentation) {
  ConceptCnn model(SmallConfig());
  CheckModelBasics(&model, SmallExample());
  EXPECT_EQ(model.Represent(SmallExample()).dim(0), 12);
}

TEST(BkDdnTest, BasicsAndRepresentations) {
  BkDdn model(SmallConfig());
  CheckModelBasics(&model, SmallExample());
  BkDdn::Representations reps = model.Represent(SmallExample());
  EXPECT_EQ(reps.word.dim(0), 12);
  EXPECT_EQ(reps.concept_vec.dim(0), 12);
  EXPECT_EQ(reps.joint.dim(0), 24);
  // Joint is the concatenation of the two branches.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(reps.joint.at(i), reps.word.at(i));
    EXPECT_EQ(reps.joint.at(12 + i), reps.concept_vec.at(i));
  }
}

TEST(AkDdnTest, BasicsAndAttention) {
  AkDdn model(SmallConfig());
  const data::Example example = SmallExample();
  CheckModelBasics(&model, example);

  AkDdn::AttentionMaps maps = model.Attend(example);
  ASSERT_EQ(maps.word_to_concept.dim(0), 8);
  ASSERT_EQ(maps.word_to_concept.dim(1), 3);
  ASSERT_EQ(maps.concept_to_word.dim(0), 3);
  ASSERT_EQ(maps.concept_to_word.dim(1), 8);
  // Attention rows are distributions.
  for (int i = 0; i < 8; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 3; ++j) {
      total += maps.word_to_concept.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  for (int i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 8; ++j) {
      total += maps.concept_to_word.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(AkDdnTest, ResidualAblationChangesConvWidth) {
  ModelConfig config = SmallConfig();
  config.akddn_residual = true;
  AkDdn model(config);
  CheckModelBasics(&model, SmallExample());
}

TEST(AkDdnTest, RepresentationsMatchBranchOutputs) {
  AkDdn model(SmallConfig());
  AkDdn::Representations reps = model.Represent(SmallExample());
  EXPECT_EQ(reps.word.dim(0), 12);
  EXPECT_EQ(reps.concept_vec.dim(0), 12);
  EXPECT_EQ(reps.joint.dim(0), 24);
}

TEST(HCnnTest, HandlesShortAndLongDocuments) {
  HCnn model(SmallConfig(), /*chunk_size=*/4);
  data::Example example = SmallExample();
  CheckModelBasics(&model, example);
  // Single-token document: one chunk of length 1, padded inside the bank.
  example.word_ids = {5};
  CheckModelBasics(&model, example);
  // Long document: many chunks.
  example.word_ids.assign(37, 3);
  CheckModelBasics(&model, example);
}

TEST(DkgamTest, Basics) {
  Dkgam model(SmallConfig());
  CheckModelBasics(&model, SmallExample());
}

TEST(ModelTest, EmptyInputsRejected) {
  TextCnn text(SmallConfig());
  AkDdn akddn(SmallConfig());
  nn::ForwardContext ctx;
  data::Example no_words = SmallExample();
  no_words.word_ids.clear();
  EXPECT_THROW(text.Logits(no_words, ctx), KddnError);
  EXPECT_THROW(akddn.Logits(no_words, ctx), KddnError);
  data::Example no_concepts = SmallExample();
  no_concepts.concept_ids.clear();
  EXPECT_THROW(akddn.Logits(no_concepts, ctx), KddnError);
}

TEST(ModelTest, DeterministicInference) {
  AkDdn model(SmallConfig());
  const data::Example example = SmallExample();
  const float a = model.PredictPositiveProbability(example);
  const float b = model.PredictPositiveProbability(example);
  EXPECT_EQ(a, b);
}

TEST(ModelTest, TrainingDropoutIsStochastic) {
  ModelConfig config = SmallConfig();
  config.dropout = 0.5f;
  TextCnn model(config);
  Rng rng(7);
  nn::ForwardContext ctx;
  ctx.training = true;
  ctx.rng = &rng;
  const data::Example example = SmallExample();
  const Tensor a = model.Logits(example, ctx)->value();
  const Tensor b = model.Logits(example, ctx)->value();
  // With dropout active, two training passes almost surely differ.
  EXPECT_GT(MaxAbsDiff(a, b), 0.0f);
}

TEST(ModelTest, ParameterCountsAreSane) {
  ModelConfig config = SmallConfig();
  TextCnn text(config);
  BkDdn bk(config);
  config.akddn_residual = false;
  AkDdn ak_plain(config);
  config.akddn_residual = true;
  AkDdn ak_residual(config);
  // Dual networks hold both branches' parameters.
  EXPECT_GT(bk.params().TotalWeights(), text.params().TotalWeights());
  // Without residual embeddings AK-DDN adds no parameters over BK-DDN
  // (ATTI is parameter-free); the residual variant widens the conv banks.
  EXPECT_EQ(ak_plain.params().TotalWeights(), bk.params().TotalWeights());
  EXPECT_GT(ak_residual.params().TotalWeights(), bk.params().TotalWeights());
}

}  // namespace
}  // namespace kddn::models

#include "models/gru.h"

namespace kddn::models {
namespace {

TEST(GruTest, BasicsAndTruncation) {
  GruModel model(SmallConfig(), /*hidden_dim=*/5, /*max_steps=*/6);
  CheckModelBasics(&model, SmallExample());
  EXPECT_EQ(model.hidden_dim(), 5);
  // Longer-than-max_steps documents are truncated, not rejected.
  data::Example long_doc = SmallExample();
  long_doc.word_ids.assign(40, 3);
  CheckModelBasics(&model, long_doc);
  // Single-token documents work (forward only: with h0 = 0 the recurrent
  // U matrices and reset gate legitimately receive no gradient after a
  // single step, so the full gradient-coverage check does not apply).
  data::Example one = SmallExample();
  one.word_ids = {2};
  nn::ForwardContext ctx;
  ag::NodePtr logits = model.Logits(one, ctx);
  ASSERT_EQ(logits->value().dim(0), 2);
  EXPECT_FALSE(std::isnan(logits->value().at(0)));
}

TEST(GruTest, HiddenStateDependsOnOrder) {
  GruModel model(SmallConfig(), 5, 16);
  data::Example forward = SmallExample();
  data::Example reversed = forward;
  std::reverse(reversed.word_ids.begin(), reversed.word_ids.end());
  // A recurrent model (unlike max-pooled CNN features) is order-sensitive.
  EXPECT_NE(model.PredictPositiveProbability(forward),
            model.PredictPositiveProbability(reversed));
}

TEST(GruTest, InvalidConfigThrows) {
  EXPECT_THROW(GruModel(SmallConfig(), 0, 8), KddnError);
  EXPECT_THROW(GruModel(SmallConfig(), 8, 0), KddnError);
}

}  // namespace
}  // namespace kddn::models

#include "tensor/tensor_ops.h"
#include "testing/grad_check.h"
#include "testing/gradient_check.h"

namespace kddn::models {
namespace {

TEST(AttiGradCheck, CoAttentionOpsMatchFiniteDifference) {
  // Tight (rel. error < 1e-3) finite-difference check of the ATTI
  // co-attention ops exactly as AK-DDN composes them: both directions
  // (words->concepts and concepts->words), through the row-softmax and the
  // value mixing.
  Rng rng(17);
  ag::NodePtr words =
      ag::Node::Leaf(RandomNormal({5, 4}, 0, 1, &rng), true, "words");
  ag::NodePtr concepts =
      ag::Node::Leaf(RandomNormal({3, 4}, 0, 1, &rng), true, "concepts");
  kddn::testing::GradCheckOptions options;
  options.epsilon = 5e-3f;
  kddn::testing::ExpectGradCheck(
      [&] {
        nn::AttiResult ic = nn::Atti(words, concepts);
        nn::AttiResult iw = nn::Atti(concepts, words);
        // Quadratic readout so attention weights get nontrivial gradients.
        return ag::Add(ag::MeanAll(ag::Mul(ic.output, ic.output)),
                       ag::MeanAll(ag::Mul(iw.output, iw.output)));
      },
      {words, concepts}, options);
}

TEST(ConvBankGradCheck, CnnBlockMatchesFiniteDifference) {
  // The paper's CNN block (multi-width conv -> ReLU -> max-over-time ->
  // concat) end to end into softmax cross-entropy, rel. error < 1e-3.
  // Inputs are O(1) so pre-activations sit away from the ReLU/max kinks
  // where central differences are meaningless.
  Rng rng(19);
  nn::ParameterSet params;
  nn::Conv1dBank conv(&params, "conv", /*input_dim=*/4, /*num_filters=*/3,
                      {1, 2, 3}, &rng);
  nn::Dense readout(&params, "readout", conv.output_dim(), 2, &rng);
  ag::NodePtr x = ag::Node::Leaf(RandomNormal({6, 4}, 0, 1, &rng), true, "x");
  std::vector<ag::NodePtr> leaves = params.all();
  leaves.push_back(x);
  kddn::testing::GradCheckOptions options;
  options.epsilon = 5e-3f;
  kddn::testing::ExpectGradCheck(
      [&] {
        return ag::SoftmaxCrossEntropy(readout.Forward(conv.Forward(x)), 0);
      },
      leaves, options);
}

TEST(AkDdnGradCheck, FullModelLossMatchesFiniteDifference) {
  // Whole AK-DDN forward graph (embeddings -> co-attention -> dual CNNs ->
  // classifier -> softmax cross-entropy) against central differences. The
  // N(0, 0.1) embedding init leaves pre-activations hugging the ReLU kink,
  // so scale the parameters to a well-conditioned point first; the check
  // verifies the backward implementation at that point.
  ModelConfig config = SmallConfig();
  config.embedding_dim = 4;
  config.num_filters = 2;
  AkDdn model(config);
  for (const ag::NodePtr& param : model.params().all()) {
    Tensor& value = param->mutable_value();
    for (int64_t i = 0; i < value.size(); ++i) {
      value[i] *= 4.0f;
    }
  }
  data::Example example = SmallExample();
  nn::ForwardContext ctx;  // Inference mode: deterministic for FD.
  kddn::testing::GradCheckOptions options;
  options.epsilon = 5e-3f;
  kddn::testing::ExpectGradCheck(
      [&] { return ag::SoftmaxCrossEntropy(model.Logits(example, ctx), 1); },
      model.params().all(), options);
}

TEST(GruTest, GradCheckThroughRecurrence) {
  // Finite-difference check through the full unrolled GRU (3 steps, tiny
  // dims) — covers every gate parameter end to end.
  ModelConfig config;
  config.word_vocab_size = 8;
  config.concept_vocab_size = 4;
  config.embedding_dim = 3;
  config.num_filters = 2;
  config.seed = 13;
  GruModel model(config, /*hidden_dim=*/3, /*max_steps=*/8);
  data::Example example;
  example.word_ids = {2, 5, 3};
  example.concept_ids = {2};
  nn::ForwardContext ctx;  // Inference mode: deterministic for FD.
  kddn::testing::ExpectGradientsMatchFiniteDifference(
      [&] {
        return ag::SoftmaxCrossEntropy(model.Logits(example, ctx), 1);
      },
      model.params().all(), 1e-2f, 4e-2f);
}

}  // namespace
}  // namespace kddn::models
