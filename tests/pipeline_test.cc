// Input-pipeline and evaluation-path suite (DESIGN.md §10, §14): the
// parallel dataset build must be byte-identical to the serial reference at
// every pool size, BatchAssembler must hand the trainer exactly the batches
// direct slicing would, the job-graph training path must reproduce the
// legacy fork/join path's weights bitwise (including across checkpoint/
// resume), inference-mode graphs must carry bitwise-identical values with no
// tape, and the fused gradient-free evaluation must record curves bitwise
// equal to the historical MeanLoss + EvaluateAuc double pass. Labelled
// `pipeline` and `sanitize` — the whole suite runs under TSan.
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/node.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/batch_assembler.h"
#include "core/experiment.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/knowledge_base.h"
#include "models/bk_ddn.h"
#include "synth/cohort.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace kddn {
namespace {

/// Restores the process-wide pool size on scope exit.
struct PoolSizeGuard {
  int previous = GlobalThreadPoolSize();
  ~PoolSizeGuard() { SetGlobalThreadPoolSize(previous); }
};

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "kddn_pipeline_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectSameExamples(const std::vector<data::Example>& actual,
                        const std::vector<data::Example>& expected,
                        const std::string& split) {
  ASSERT_EQ(actual.size(), expected.size()) << split;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].patient_id, expected[i].patient_id)
        << split << " example " << i;
    EXPECT_EQ(actual[i].word_ids, expected[i].word_ids)
        << split << " example " << i;
    EXPECT_EQ(actual[i].concept_ids, expected[i].concept_ids)
        << split << " example " << i;
    EXPECT_EQ(actual[i].labels, expected[i].labels)
        << split << " example " << i;
  }
}

void ExpectSameVocab(const text::Vocabulary& actual,
                     const text::Vocabulary& expected,
                     const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (int id = 0; id < expected.size(); ++id) {
    EXPECT_EQ(actual.TokenOf(id), expected.TokenOf(id)) << what << " id " << id;
    EXPECT_EQ(actual.Frequency(id), expected.Frequency(id))
        << what << " id " << id;
  }
}

// ---------------------------------------------------------------------------
// Parallel dataset build: byte-identical to the serial reference.
// ---------------------------------------------------------------------------

TEST(ParallelDatasetBuildTest, MatchesSerialByteForByteAtEveryPoolSize) {
  PoolSizeGuard guard;
  const kb::KnowledgeBase kb = kb::KnowledgeBase::BuildDefault();
  const kb::ConceptExtractor extractor(&kb);
  synth::CohortConfig cohort_config;
  cohort_config.num_patients = 90;
  cohort_config.seed = 37;
  const synth::Cohort cohort = synth::Cohort::Generate(cohort_config, kb);

  data::DatasetOptions options;
  options.max_words = 48;
  options.max_concepts = 24;
  options.parallel_build = false;
  const data::MortalityDataset serial =
      data::MortalityDataset::Build(cohort, extractor, options);

  options.parallel_build = true;
  for (const int pool_size : {1, 2, 4}) {
    SetGlobalThreadPoolSize(pool_size);
    const data::MortalityDataset parallel =
        data::MortalityDataset::Build(cohort, extractor, options);
    const std::string tag = "pool=" + std::to_string(pool_size);
    EXPECT_EQ(parallel.excluded_zero_concept(), serial.excluded_zero_concept())
        << tag;
    EXPECT_EQ(parallel.num_patients(), serial.num_patients()) << tag;
    ExpectSameVocab(parallel.word_vocab(), serial.word_vocab(),
                    tag + " word vocab");
    ExpectSameVocab(parallel.concept_vocab(), serial.concept_vocab(),
                    tag + " concept vocab");
    ExpectSameExamples(parallel.train(), serial.train(), tag + " train");
    ExpectSameExamples(parallel.validation(), serial.validation(),
                       tag + " validation");
    ExpectSameExamples(parallel.test(), serial.test(), tag + " test");
    // The raw count vectors behind the moments must merge in patient order.
    EXPECT_EQ(parallel.WordStats().mean, serial.WordStats().mean) << tag;
    EXPECT_EQ(parallel.WordStats().stddev, serial.WordStats().stddev) << tag;
    EXPECT_EQ(parallel.ConceptStats().mean, serial.ConceptStats().mean) << tag;
    EXPECT_EQ(parallel.ConceptStats().stddev, serial.ConceptStats().stddev)
        << tag;
    for (synth::Horizon horizon : synth::kAllHorizons) {
      EXPECT_EQ(parallel.CountPositive(horizon), serial.CountPositive(horizon))
          << tag;
    }
  }
}

// ---------------------------------------------------------------------------
// BatchAssembler: exactly the batches direct slicing would produce.
// ---------------------------------------------------------------------------

std::vector<data::Example> TinyExamples(int count) {
  std::vector<data::Example> examples;
  for (int i = 0; i < count; ++i) {
    data::Example example;
    example.patient_id = 100 + i;
    example.word_ids = {1 + i % 3, 2, 5};
    example.concept_ids = {1, 2 + i % 2};
    example.labels = {i % 2 == 0, i % 3 == 0, true};
    examples.push_back(std::move(example));
  }
  return examples;
}

TEST(BatchAssemblerTest, BatchesMatchDirectSlicing) {
  const std::vector<data::Example> examples = TinyExamples(10);
  core::BatchAssembler::Options options;
  options.batch_size = 4;
  options.chunk_size = 2;
  options.seed = 77;
  options.horizon = synth::Horizon::kWithin30Days;
  const core::BatchAssembler assembler(&examples, options);

  // Two epochs with different orders; a batch is a pure function of
  // (order, epoch, index), so slots can be (re)filled in any sequence.
  std::vector<int> forward(10), reversed(10);
  for (int i = 0; i < 10; ++i) {
    forward[i] = i;
    reversed[i] = 9 - i;
  }
  const std::vector<const std::vector<int>*> orders = {&forward, &reversed};

  core::PreparedBatch batch;
  for (int epoch = 1; epoch <= 2; ++epoch) {
    const std::vector<int>& order = *orders[epoch - 1];
    ASSERT_EQ(assembler.BatchesPerEpoch(order.size()), 3u);
    for (size_t index = 0; index < 3; ++index) {
      // Reuse one slot across every call, as the trainer's double buffer
      // does: AssembleInto must fully overwrite the previous batch.
      assembler.AssembleInto(&batch, &order, epoch, index);
      const size_t begin = index * options.batch_size;
      const size_t end = std::min<size_t>(10, begin + options.batch_size);
      const std::string tag = "epoch=" + std::to_string(epoch) +
                              " batch=" + std::to_string(index);
      EXPECT_EQ(batch.epoch, epoch) << tag;
      EXPECT_EQ(batch.begin, begin) << tag;
      ASSERT_EQ(batch.size, end - begin) << tag;
      EXPECT_EQ(batch.num_chunks, (batch.size + 1) / 2) << tag;
      EXPECT_EQ(batch.inv_batch, 1.0f / static_cast<float>(batch.size))
          << tag;
      ASSERT_EQ(batch.examples.size(), batch.size) << tag;
      ASSERT_EQ(batch.dropout_seeds.size(), batch.size) << tag;
      ASSERT_EQ(batch.labels.size(), batch.size) << tag;
      for (size_t j = 0; j < batch.size; ++j) {
        const data::Example& expected = examples[order[begin + j]];
        EXPECT_EQ(batch.examples[j], &expected) << tag << " slot " << j;
        EXPECT_EQ(batch.dropout_seeds[j],
                  core::MixDropoutSeed(options.seed, epoch, begin + j))
            << tag << " slot " << j;
        EXPECT_EQ(batch.labels[j],
                  expected.Label(options.horizon) ? 1 : 0)
            << tag << " slot " << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Inference mode: bitwise values, no tape.
// ---------------------------------------------------------------------------

TEST(InferenceModeTest, ValuesBitwiseEqualWithNoTapeAndBackwardRefused) {
  Rng rng(99);
  const Tensor init = RandomNormal({6, 4}, 0, 0.5f, &rng);
  const std::vector<int> ids = {0, 3, 3, 5};

  ag::NodePtr graph_table = ag::Node::Leaf(init, true, "emb.table");
  const ag::NodePtr graph_loss =
      ag::MeanAll(ag::Mul(ag::EmbeddingLookup(graph_table, ids),
                          ag::EmbeddingLookup(graph_table, ids)));
  EXPECT_FALSE(graph_loss->parents().empty());

  ag::NodePtr inference_loss;
  {
    ag::InferenceModeScope inference;
    EXPECT_TRUE(ag::InferenceModeEnabled());
    ag::NodePtr table = ag::Node::Leaf(init, true, "emb.table");
    inference_loss = ag::MeanAll(ag::Mul(ag::EmbeddingLookup(table, ids),
                                         ag::EmbeddingLookup(table, ids)));
  }
  EXPECT_FALSE(ag::InferenceModeEnabled());

  // Same arithmetic, same bits — only tape retention differs.
  EXPECT_EQ(ag::ScalarValue(inference_loss), ag::ScalarValue(graph_loss));
  EXPECT_TRUE(inference_loss->parents().empty());
  EXPECT_FALSE(inference_loss->requires_grad());
  EXPECT_THROW(ag::Backward(inference_loss), KddnError);
}

// ---------------------------------------------------------------------------
// End-to-end training golden: the job graph, assembly overlap, and fused
// eval change wall-clock only — never a trained bit.
// ---------------------------------------------------------------------------

class TrainingPipelineTest : public ::testing::Test {
 protected:
  TrainingPipelineTest()
      : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 120;
    config.seed = 91;
    cohort_ = synth::Cohort::Generate(config, kb_);
    data::DatasetOptions options;
    options.max_words = 48;
    options.max_concepts = 24;
    dataset_ = data::MortalityDataset::Build(cohort_, extractor_, options);
  }

  models::ModelConfig ModelConfigForDataset() const {
    models::ModelConfig config;
    config.word_vocab_size = dataset_.word_vocab().size();
    config.concept_vocab_size = dataset_.concept_vocab().size();
    config.embedding_dim = 6;
    config.num_filters = 4;
    config.seed = 17;
    return config;
  }

  struct RunResult {
    std::vector<Tensor> params;
    std::vector<eval::CurvePoint> curve;
  };

  RunResult TrainOnce(const std::string& model_name,
                      const core::TrainOptions& options) {
    std::unique_ptr<models::NeuralDocumentModel> model =
        core::MakeDeepModel(model_name, ModelConfigForDataset());
    core::Trainer trainer(options);
    const eval::CurveRecorder recorder =
        trainer.Train(model.get(), dataset_.train(), dataset_.validation(),
                      synth::Horizon::kInHospital);
    RunResult result;
    for (const ag::NodePtr& param : model->params().all()) {
      result.params.push_back(param->value());
    }
    result.curve = recorder.points();
    return result;
  }

  static core::TrainOptions BaseOptions() {
    core::TrainOptions options;
    options.epochs = 3;
    options.batch_size = 16;
    options.seed = 13;
    options.num_threads = 1;
    return options;
  }

  static void ExpectSameRun(const RunResult& actual, const RunResult& expected,
                            const std::string& tag) {
    ASSERT_EQ(actual.params.size(), expected.params.size()) << tag;
    for (size_t i = 0; i < actual.params.size(); ++i) {
      ASSERT_TRUE(actual.params[i].SameShape(expected.params[i])) << tag;
      EXPECT_EQ(std::memcmp(actual.params[i].data(), expected.params[i].data(),
                            actual.params[i].size() * sizeof(float)),
                0)
          << tag << " param " << i;
    }
    ASSERT_EQ(actual.curve.size(), expected.curve.size()) << tag;
    for (size_t i = 0; i < actual.curve.size(); ++i) {
      EXPECT_EQ(actual.curve[i].epoch, expected.curve[i].epoch) << tag;
      EXPECT_EQ(actual.curve[i].train_loss, expected.curve[i].train_loss)
          << tag << " epoch " << i + 1;
      EXPECT_EQ(actual.curve[i].validation_loss,
                expected.curve[i].validation_loss)
          << tag << " epoch " << i + 1;
      EXPECT_EQ(actual.curve[i].validation_auc,
                expected.curve[i].validation_auc)
          << tag << " epoch " << i + 1;
    }
  }

  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
  data::MortalityDataset dataset_;
};

TEST_F(TrainingPipelineTest, JobGraphWeightsMatchLegacyForkJoinGolden) {
  // Golden: the legacy fork/join path, single-threaded, no overlap.
  core::TrainOptions golden_options = BaseOptions();
  golden_options.use_job_graph = false;
  golden_options.prefetch = false;
  const RunResult golden = TrainOnce("BK-DDN", golden_options);
  ASSERT_FALSE(golden.params.empty());
  for (const bool prefetch : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      core::TrainOptions options = BaseOptions();
      options.use_job_graph = true;
      options.prefetch = prefetch;
      options.num_threads = threads;
      ExpectSameRun(TrainOnce("BK-DDN", options), golden,
                    "graph prefetch=" + std::to_string(prefetch) +
                        " threads=" + std::to_string(threads));
    }
  }
  // The legacy path itself must also be schedule-independent.
  core::TrainOptions legacy = BaseOptions();
  legacy.use_job_graph = false;
  legacy.num_threads = 4;
  ExpectSameRun(TrainOnce("BK-DDN", legacy), golden, "legacy threads=4");
}

TEST_F(TrainingPipelineTest, FusedEvalCurvesMatchTwoPassBitwise) {
  // BK-DDN exercises the frozen-snapshot route, Text CNN the generic
  // inference-mode graph route — both must reproduce the double pass's
  // curve (and, through best-epoch selection, its final weights) exactly.
  for (const std::string model_name : {"BK-DDN", "Text CNN"}) {
    core::TrainOptions two_pass = BaseOptions();
    two_pass.fused_eval = false;
    core::TrainOptions fused = BaseOptions();
    fused.fused_eval = true;
    ExpectSameRun(TrainOnce(model_name, fused), TrainOnce(model_name, two_pass),
                  "fused eval " + model_name);
  }
}

TEST_F(TrainingPipelineTest, ResumeMidRunWithPrefetchIsBitwiseExact) {
  core::TrainOptions straight = BaseOptions();
  straight.prefetch = true;
  straight.num_threads = 4;
  const RunResult golden = TrainOnce("BK-DDN", straight);

  // Interrupted twin: stop after epoch 2, then resume to the full horizon.
  core::TrainOptions interrupted = straight;
  interrupted.checkpoint_dir = ScratchDir("resume_prefetch");
  interrupted.epochs = 2;
  TrainOnce("BK-DDN", interrupted);
  interrupted.epochs = straight.epochs;
  interrupted.resume = true;
  ExpectSameRun(TrainOnce("BK-DDN", interrupted), golden, "resume");
  std::filesystem::remove_all(interrupted.checkpoint_dir);
}

TEST_F(TrainingPipelineTest, EvaluateSplitMatchesTwoPassStatics) {
  core::TrainOptions options = BaseOptions();
  options.epochs = 1;
  std::unique_ptr<models::NeuralDocumentModel> model =
      core::MakeDeepModel("BK-DDN", ModelConfigForDataset());
  core::Trainer(options).Train(model.get(), dataset_.train(),
                               dataset_.validation(),
                               synth::Horizon::kInHospital);
  const core::Trainer::EvalMetrics metrics = core::Trainer::EvaluateSplit(
      model.get(), dataset_.test(), synth::Horizon::kInHospital);
  EXPECT_EQ(metrics.auc,
            core::Trainer::EvaluateAuc(model.get(), dataset_.test(),
                                       synth::Horizon::kInHospital));
  EXPECT_GT(metrics.mean_loss, 0.0);

  // Degenerate splits report what the two-pass route reports.
  const core::Trainer::EvalMetrics empty = core::Trainer::EvaluateSplit(
      model.get(), {}, synth::Horizon::kInHospital);
  EXPECT_EQ(empty.mean_loss, 0.0);
  EXPECT_EQ(empty.auc, 0.5);
  std::vector<data::Example> one_class(3, dataset_.test().front());
  for (data::Example& example : one_class) {
    example.labels = {true, true, true};
  }
  const core::Trainer::EvalMetrics degenerate = core::Trainer::EvaluateSplit(
      model.get(), one_class, synth::Horizon::kInHospital);
  EXPECT_EQ(degenerate.auc, 0.5);
  EXPECT_GT(degenerate.mean_loss, 0.0);
}

}  // namespace
}  // namespace kddn
