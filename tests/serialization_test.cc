#include "nn/serialization.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "gtest/gtest.h"
#include "models/ak_ddn.h"
#include "tensor/tensor_ops.h"

namespace kddn::nn {
namespace {

ParameterSet* MakeSet(Rng* rng, ParameterSet* params) {
  params->Create("a", RandomNormal({3, 4}, 0, 1, rng));
  params->Create("b", RandomNormal({5}, 0, 1, rng));
  return params;
}

TEST(SerializationTest, StreamRoundTrip) {
  Rng rng(1);
  ParameterSet source;
  MakeSet(&rng, &source);
  std::stringstream buffer;
  SaveParameters(source, buffer);

  ParameterSet target;
  MakeSet(&rng, &target);  // Different random values, same structure.
  EXPECT_GT(MaxAbsDiff(source.Get("a")->value(), target.Get("a")->value()),
            0.0f);
  LoadParameters(&target, buffer);
  EXPECT_EQ(MaxAbsDiff(source.Get("a")->value(), target.Get("a")->value()),
            0.0f);
  EXPECT_EQ(MaxAbsDiff(source.Get("b")->value(), target.Get("b")->value()),
            0.0f);
}

TEST(SerializationTest, RejectsWrongStructure) {
  Rng rng(2);
  ParameterSet source;
  MakeSet(&rng, &source);
  std::stringstream buffer;
  SaveParameters(source, buffer);

  // Extra parameter -> count mismatch.
  ParameterSet extra;
  MakeSet(&rng, &extra);
  extra.Create("c", Tensor({2}));
  EXPECT_THROW(LoadParameters(&extra, buffer), KddnError);

  // Wrong name.
  buffer.clear();
  buffer.seekg(0);
  ParameterSet renamed;
  renamed.Create("x", RandomNormal({3, 4}, 0, 1, &rng));
  renamed.Create("b", RandomNormal({5}, 0, 1, &rng));
  EXPECT_THROW(LoadParameters(&renamed, buffer), KddnError);

  // Wrong shape.
  buffer.clear();
  buffer.seekg(0);
  ParameterSet reshaped;
  reshaped.Create("a", RandomNormal({4, 3}, 0, 1, &rng));
  reshaped.Create("b", RandomNormal({5}, 0, 1, &rng));
  EXPECT_THROW(LoadParameters(&reshaped, buffer), KddnError);
}

TEST(SerializationTest, RejectsGarbageAndTruncation) {
  ParameterSet params;
  Rng rng(3);
  MakeSet(&rng, &params);
  std::stringstream garbage("this is not a checkpoint");
  EXPECT_THROW(LoadParameters(&params, garbage), KddnError);

  std::stringstream full;
  SaveParameters(params, full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadParameters(&params, truncated), KddnError);

  // Losing even the final byte must be loud: the checksum no longer lines up.
  std::stringstream short_one(bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW(LoadParameters(&params, short_one), KddnError);
}

TEST(SerializationTest, RejectsBitFlips) {
  ParameterSet params;
  Rng rng(4);
  MakeSet(&rng, &params);
  std::stringstream out;
  SaveParameters(params, out);
  const std::string clean = out.str();

  // Flip one bit at a spread of positions — header, name bytes, float
  // payload, checksum itself. Every flip must fail the load (format v1
  // would silently accept payload flips as different weights).
  for (size_t pos : {size_t{0}, size_t{9}, clean.size() / 2,
                     clean.size() - 5, clean.size() - 1}) {
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    std::stringstream in(corrupt);
    ParameterSet target;
    MakeSet(&rng, &target);
    EXPECT_THROW(LoadParameters(&target, in), KddnError)
        << "bit flip at byte " << pos << " loaded silently";
  }
}

TEST(SerializationTest, RejectsVersion1Checkpoints) {
  ParameterSet params;
  Rng rng(5);
  MakeSet(&rng, &params);
  std::stringstream out;
  SaveParameters(params, out);
  std::string bytes = out.str();
  bytes[4] = 1;  // Version field follows the 4-byte magic.
  std::stringstream in(bytes);
  EXPECT_THROW(LoadParameters(&params, in), KddnError);
}

TEST(SerializationTest, FileRoundTripPreservesModelPredictions) {
  models::ModelConfig config;
  config.word_vocab_size = 20;
  config.concept_vocab_size = 10;
  config.embedding_dim = 6;
  config.num_filters = 4;
  config.seed = 7;
  models::AkDdn original(config);

  data::Example example;
  example.word_ids = {2, 3, 4, 5, 2};
  example.concept_ids = {2, 3};
  const float before = original.PredictPositiveProbability(example);

  const std::string path = ::testing::TempDir() + "/kddn_ckpt.bin";
  SaveParametersToFile(original.params(), path);

  config.seed = 99;  // Different init — must be fully overwritten by load.
  models::AkDdn restored(config);
  EXPECT_NE(restored.PredictPositiveProbability(example), before);
  LoadParametersFromFile(&restored.params(), path);
  EXPECT_EQ(restored.PredictPositiveProbability(example), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileThrows) {
  ParameterSet params;
  EXPECT_THROW(LoadParametersFromFile(&params, "/nonexistent/kddn.bin"),
               KddnError);
}

}  // namespace
}  // namespace kddn::nn
