// Chaos-campaign suite (DESIGN.md §13): schedule grammar round trips and
// loud rejection of malformed specs, seeded campaign generation, burst
// -window semantics on the fault injector, and — the property the hot-swap
// bench rides on — bit-for-bit replay: the same schedule over the same
// per-site traversal produces the identical fired-event log, including when
// the hits come from multiple threads.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "common/check.h"
#include "common/fault_injector.h"
#include "gtest/gtest.h"

namespace kddn {
namespace {

/// Every test starts from a clean injector: no armed sites, empty log.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().ClearFiredLog();
  }
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().ClearFiredLog();
  }
};

/// Traverses `site` `hits` times, swallowing injected faults; returns how
/// many hits threw.
int Traverse(const char* site, int hits) {
  int fired = 0;
  for (int i = 0; i < hits; ++i) {
    try {
      FaultInjector::Instance().Hit(site);
    } catch (const KddnError&) {
      ++fired;
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Schedule grammar.
// ---------------------------------------------------------------------------
TEST_F(ChaosTest, ParsesSingleAndMultiEventSpecs) {
  const ChaosSchedule one = ChaosSchedule::Parse("http.read@40");
  ASSERT_EQ(one.events.size(), 1u);
  EXPECT_EQ(one.events[0].site, "http.read");
  EXPECT_EQ(one.events[0].first_hit, 40);
  EXPECT_EQ(one.events[0].burst, 1);

  const ChaosSchedule many =
      ChaosSchedule::Parse(" serve.encode.extract@5x3 ; http.read@40 ;");
  ASSERT_EQ(many.events.size(), 2u);
  EXPECT_EQ(many.events[0].site, "serve.encode.extract");
  EXPECT_EQ(many.events[0].first_hit, 5);
  EXPECT_EQ(many.events[0].burst, 3);
  EXPECT_EQ(many.events[1].site, "http.read");
  EXPECT_EQ(many.events[1].burst, 1);

  EXPECT_TRUE(ChaosSchedule::Parse("").empty());
  EXPECT_TRUE(ChaosSchedule::Parse("  ").empty());
}

TEST_F(ChaosTest, ToStringRoundTripsThroughParse) {
  const char* specs[] = {
      "a.b@0", "a.b@5x3", "a.b@5x3;c.d@0;c.d@9x2",
  };
  for (const char* spec : specs) {
    const ChaosSchedule schedule = ChaosSchedule::Parse(spec);
    EXPECT_EQ(schedule.ToString(), spec);
    EXPECT_EQ(ChaosSchedule::Parse(schedule.ToString()).events,
              schedule.events);
  }
}

TEST_F(ChaosTest, MalformedSpecsThrowKddnError) {
  const char* bad[] = {
      "no-at-sign",      // Missing '@'.
      "@5",              // Empty site.
      "a.b@",            // Empty first_hit.
      "a.b@x3",          // Empty first_hit before burst.
      "a.b@five",        // Non-numeric first_hit.
      "a.b@-1",          // Negative (the '-' is not a digit).
      "a.b@1x",          // Empty burst.
      "a.b@1xq",         // Non-numeric burst.
      "a.b@1x0",         // burst < 1.
      "a.b@99999999999", // Out of int range.
  };
  for (const char* spec : bad) {
    EXPECT_THROW(ChaosSchedule::Parse(spec), KddnError) << spec;
  }
}

// ---------------------------------------------------------------------------
// Seeded campaign generation.
// ---------------------------------------------------------------------------
TEST_F(ChaosTest, GenerateCampaignIsAPureFunctionOfTheSeed) {
  const std::vector<std::string> sites = {"a.b", "c.d", "e.f"};
  const ChaosSchedule first = GenerateCampaign(77, sites, 12, 50, 8);
  const ChaosSchedule again = GenerateCampaign(77, sites, 12, 50, 8);
  EXPECT_EQ(first.events, again.events);
  ASSERT_EQ(first.events.size(), 12u);
  for (const ChaosEvent& event : first.events) {
    EXPECT_TRUE(event.site == "a.b" || event.site == "c.d" ||
                event.site == "e.f");
    EXPECT_GE(event.first_hit, 0);
    EXPECT_LE(event.first_hit, 50);
    EXPECT_GE(event.burst, 1);
    EXPECT_LE(event.burst, 8);
  }
  const ChaosSchedule other = GenerateCampaign(78, sites, 12, 50, 8);
  EXPECT_NE(first.events, other.events);
  // The schedule survives its own wire form, so a bench artifact's
  // chaos_schedule string is sufficient to replay the campaign.
  EXPECT_EQ(ChaosSchedule::Parse(first.ToString()).events, first.events);
}

// ---------------------------------------------------------------------------
// Burst-window semantics on the injector.
// ---------------------------------------------------------------------------
TEST_F(ChaosTest, BurstWindowFiresOnExactlyItsHits) {
  FaultInjector::Instance().ArmWindow("chaos.test.burst", 2, 3);
  EXPECT_EQ(Traverse("chaos.test.burst", 10), 3);  // Hits 2, 3, 4 threw.
  const auto log = FaultInjector::Instance().FiredLog();
  ASSERT_EQ(log.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)].site, "chaos.test.burst");
    EXPECT_EQ(log[static_cast<size_t>(i)].hit, 2 + i);
  }
  // The window is spent; further traffic passes.
  EXPECT_EQ(Traverse("chaos.test.burst", 10), 0);
}

TEST_F(ChaosTest, WindowsStackWithoutResettingTheHitCount) {
  FaultInjector::Instance().ArmWindow("chaos.test.stack", 1, 2);
  EXPECT_EQ(Traverse("chaos.test.stack", 4), 2);  // Hits 1, 2.
  // Appended mid-stream: the site is at hit 4, so a window at 6 is still
  // ahead of it. Arm() would have reset the count; ArmWindow must not.
  FaultInjector::Instance().ArmWindow("chaos.test.stack", 6, 1);
  EXPECT_EQ(Traverse("chaos.test.stack", 4), 1);  // Hit 6 (hits 4..7).
  EXPECT_EQ(FaultInjector::Instance().HitCount("chaos.test.stack"), 8);
}

TEST_F(ChaosTest, ArmKeepsItsSingleShotContract) {
  FaultInjector::Instance().Arm("chaos.test.single", 3);
  EXPECT_EQ(Traverse("chaos.test.single", 10), 1);
  // Re-arming resets the hit count and replaces the window.
  FaultInjector::Instance().Arm("chaos.test.single", 0);
  EXPECT_EQ(Traverse("chaos.test.single", 10), 1);
  FaultInjector::Instance().Disarm("chaos.test.single");
  EXPECT_EQ(Traverse("chaos.test.single", 10), 0);
}

// ---------------------------------------------------------------------------
// Replay determinism: the property that turns a chaos run into a repeatable
// measurement. Campaign + per-site traversal => identical fired log.
// ---------------------------------------------------------------------------
TEST_F(ChaosTest, CampaignReplaysBitForBitFromOneSeed) {
  const std::vector<std::string> sites = {"chaos.test.r1", "chaos.test.r2"};
  std::vector<FaultInjector::FiredEvent> logs[2];
  for (int run = 0; run < 2; ++run) {
    const ChaosSchedule schedule = GenerateCampaign(123, sites, 6, 30, 4);
    ChaosCampaign campaign(schedule);
    for (int hit = 0; hit < 64; ++hit) {  // Interleaved traversal.
      Traverse("chaos.test.r1", 1);
      Traverse("chaos.test.r2", 1);
    }
    logs[run] = FaultInjector::Instance().FiredLog();
  }
  EXPECT_FALSE(logs[0].empty());  // max_first_hit 30 < 64 hits: something fired.
  EXPECT_EQ(logs[0], logs[1]);
  // RAII disarm: after the campaigns, the sites are quiet.
  EXPECT_EQ(Traverse("chaos.test.r1", 64), 0);
}

TEST_F(ChaosTest, ConcurrentTraversalFiresADeterministicCount) {
  // Four threads share one site. The interleaving is arbitrary but the hit
  // ordinals are unique, so the number of injected faults is exactly the
  // window union's size on every run (and TSan owns the data-race check).
  ChaosCampaign campaign(
      ChaosSchedule::Parse("chaos.test.mt@3x5;chaos.test.mt@20x2"));
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 16; ++i) {
        try {
          FaultInjector::Instance().Hit("chaos.test.mt");
        } catch (const KddnError&) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(fired.load(), 7);  // Hits [3,8) and [20,22) of 64 total.
  EXPECT_EQ(FaultInjector::Instance().FiredLog().size(), 7u);
  EXPECT_EQ(FaultInjector::Instance().HitCount("chaos.test.mt"), 64);
}

}  // namespace
}  // namespace kddn
