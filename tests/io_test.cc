// Tests for the text serialization layers: knowledge-base TSV and cohort
// JSONL round-trips.
#include <sstream>

#include "common/check.h"
#include "gtest/gtest.h"
#include "kb/kb_io.h"
#include "synth/corpus_io.h"

namespace kddn {
namespace {

TEST(KbIoTest, SemanticTypeNamesRoundTrip) {
  for (auto type : {kb::SemanticType::kDiseaseOrSyndrome,
                    kb::SemanticType::kSignOrSymptom,
                    kb::SemanticType::kBiomedicalDevice,
                    kb::SemanticType::kQualitativeConcept}) {
    EXPECT_EQ(kb::ParseSemanticType(kb::SemanticTypeName(type)), type);
  }
  EXPECT_THROW(kb::ParseSemanticType("Not A Type"), KddnError);
}

TEST(KbIoTest, DefaultKbRoundTripsExactly) {
  const kb::KnowledgeBase original = kb::KnowledgeBase::BuildDefault();
  std::stringstream buffer;
  kb::WriteKnowledgeBaseTsv(original, buffer);
  const kb::KnowledgeBase restored = kb::ReadKnowledgeBaseTsv(buffer);
  ASSERT_EQ(restored.size(), original.size());
  for (const kb::Concept& entry : original.concepts()) {
    const kb::Concept* copy = restored.FindByCui(entry.cui);
    ASSERT_NE(copy, nullptr) << entry.cui;
    EXPECT_EQ(copy->preferred_name, entry.preferred_name);
    EXPECT_EQ(copy->aliases, entry.aliases);
    EXPECT_EQ(copy->semantic_type, entry.semantic_type);
    EXPECT_EQ(copy->definition, entry.definition);
  }
}

TEST(KbIoTest, CommentsAndBlanksIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "C0000001\tFinding\tTest finding\talias a|alias b\tA definition\n");
  const kb::KnowledgeBase kb = kb::ReadKnowledgeBaseTsv(in);
  ASSERT_EQ(kb.size(), 1);
  const kb::Concept* entry = kb.FindByCui("C0000001");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->aliases.size(), 2u);
  EXPECT_EQ(entry->aliases[1], "alias b");
}

TEST(KbIoTest, MalformedRowsThrow) {
  std::stringstream missing_fields("C1\tFinding\tname\n");
  EXPECT_THROW(kb::ReadKnowledgeBaseTsv(missing_fields), KddnError);
  std::stringstream bad_type("C1\tNope\tname\ta\tdef\n");
  EXPECT_THROW(kb::ReadKnowledgeBaseTsv(bad_type), KddnError);
  std::stringstream duplicate(
      "C1\tFinding\tname\ta\tdef\nC1\tFinding\tname2\tb\tdef\n");
  EXPECT_THROW(kb::ReadKnowledgeBaseTsv(duplicate), KddnError);
}

TEST(EscapeJsonTest, EscapesSpecials) {
  EXPECT_EQ(synth::EscapeJson("plain"), "plain");
  EXPECT_EQ(synth::EscapeJson("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
}

class CorpusIoTest : public ::testing::Test {
 protected:
  CorpusIoTest() : kb_(kb::KnowledgeBase::BuildDefault()) {
    synth::CohortConfig config;
    config.num_patients = 60;
    config.seed = 5;
    cohort_ = synth::Cohort::Generate(config, kb_);
  }
  kb::KnowledgeBase kb_;
  synth::Cohort cohort_;
};

TEST_F(CorpusIoTest, JsonlRoundTrip) {
  std::stringstream buffer;
  synth::WriteCohortJsonl(cohort_, buffer);
  const auto records = synth::ReadCohortJsonl(buffer);
  ASSERT_EQ(records.size(), cohort_.patients().size());
  for (size_t i = 0; i < records.size(); ++i) {
    const synth::SyntheticPatient& patient = cohort_.patients()[i];
    const synth::PatientRecord& record = records[i];
    EXPECT_EQ(record.id, patient.id);
    EXPECT_EQ(record.age, patient.age);
    EXPECT_EQ(record.outcome, patient.outcome);
    EXPECT_EQ(record.text, patient.text);
    ASSERT_EQ(record.disease_cuis.size(), patient.disease_indices.size());
    for (size_t d = 0; d < record.disease_cuis.size(); ++d) {
      EXPECT_EQ(record.disease_cuis[d],
                cohort_.panel()[patient.disease_indices[d]].cui);
    }
    ASSERT_EQ(record.disease_worsening.size(),
              patient.disease_worsening.size());
    for (size_t d = 0; d < record.disease_worsening.size(); ++d) {
      EXPECT_EQ(record.disease_worsening[d], patient.disease_worsening[d]);
    }
  }
}

TEST_F(CorpusIoTest, EmptyLinesSkippedAndBadJsonThrows) {
  std::stringstream ok("\n\n");
  EXPECT_TRUE(synth::ReadCohortJsonl(ok).empty());
  std::stringstream bad("{\"id\":}");
  EXPECT_THROW(synth::ReadCohortJsonl(bad), KddnError);
  std::stringstream unknown_key("{\"mystery\":1}");
  EXPECT_THROW(synth::ReadCohortJsonl(unknown_key), KddnError);
  std::stringstream bad_outcome("{\"outcome\":9}");
  EXPECT_THROW(synth::ReadCohortJsonl(bad_outcome), KddnError);
}

}  // namespace
}  // namespace kddn
