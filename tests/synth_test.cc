#include "synth/cohort.h"

#include <set>

#include "common/check.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "synth/note_generator.h"

namespace kddn::synth {
namespace {

class SynthTest : public ::testing::Test {
 protected:
  SynthTest() : kb_(kb::KnowledgeBase::BuildDefault()) {}
  kb::KnowledgeBase kb_;
};

TEST_F(SynthTest, DiseasePanelIsValidated) {
  const auto panel = BuildDiseasePanel(kb_);
  EXPECT_GE(panel.size(), 20u);
  for (const DiseaseProfile& profile : panel) {
    EXPECT_GT(profile.lethality, 0.0);
    EXPECT_LE(profile.lethality, 1.0);
    EXPECT_GT(profile.prevalence, 0.0);
    EXPECT_NE(kb_.FindByCui(profile.cui), nullptr);
  }
}

TEST_F(SynthTest, HorizonNesting) {
  EXPECT_TRUE(IsPositive(MortalityOutcome::kInHospital, Horizon::kInHospital));
  EXPECT_TRUE(IsPositive(MortalityOutcome::kInHospital, Horizon::kWithin30Days));
  EXPECT_TRUE(IsPositive(MortalityOutcome::kInHospital, Horizon::kWithinYear));
  EXPECT_FALSE(
      IsPositive(MortalityOutcome::kWithin30Days, Horizon::kInHospital));
  EXPECT_TRUE(
      IsPositive(MortalityOutcome::kWithin30Days, Horizon::kWithin30Days));
  EXPECT_FALSE(IsPositive(MortalityOutcome::kWithinYear, Horizon::kWithin30Days));
  EXPECT_TRUE(IsPositive(MortalityOutcome::kWithinYear, Horizon::kWithinYear));
  for (Horizon horizon : kAllHorizons) {
    EXPECT_FALSE(IsPositive(MortalityOutcome::kAlive, horizon));
  }
}

TEST_F(SynthTest, NoteGeneratorMentionsDiseases) {
  NoteGenerator generator(&kb_);
  const auto panel = BuildDiseasePanel(kb_);
  PatientState state;
  state.diseases = {&panel[0]};  // CHF.
  Rng rng(1);
  bool mentioned = false;
  // Over several draws at least one note must surface a CHF alias.
  for (int i = 0; i < 5 && !mentioned; ++i) {
    const std::string note = generator.Generate(state, NoteStyle::kNursing,
                                                &rng);
    mentioned = note.find("heart failure") != std::string::npos ||
                note.find("chf") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(SynthTest, TrajectoryControlsStatusVocabulary) {
  NoteGenerator generator(&kb_);
  const auto panel = BuildDiseasePanel(kb_);
  PatientState improving;
  improving.improving = true;
  improving.diseases = {&panel[0], &panel[3]};
  improving.disease_worsening = {false, false};
  PatientState worsening = improving;
  worsening.improving = false;
  worsening.disease_worsening = {true, true};

  Rng rng(2);
  std::string improving_text, worsening_text;
  for (int i = 0; i < 8; ++i) {
    improving_text += generator.Generate(improving, NoteStyle::kNursing, &rng);
    worsening_text += generator.Generate(worsening, NoteStyle::kNursing, &rng);
  }
  auto count = [](const std::string& text, const std::string& needle) {
    int n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  // Status vocabulary should track the per-disease trajectories; the note
  // closers carry deliberate flip noise, so compare frequencies rather than
  // demanding absence.
  const int improving_good =
      count(improving_text, "improv") + count(improving_text, "resolv") +
      count(improving_text, "stable") + count(improving_text, "decreas");
  const int improving_bad =
      count(improving_text, "worsen") + count(improving_text, "deteriorat") +
      count(improving_text, "increas") + count(improving_text, "escalat");
  const int worsening_good =
      count(worsening_text, "improv") + count(worsening_text, "resolv") +
      count(worsening_text, "stable") + count(worsening_text, "decreas");
  const int worsening_bad =
      count(worsening_text, "worsen") + count(worsening_text, "deteriorat") +
      count(worsening_text, "increas") + count(worsening_text, "escalat");
  EXPECT_GT(improving_good, improving_bad);
  EXPECT_GT(worsening_bad, worsening_good);
  // Per-disease adjacency: a mixed patient mentions both vocabularies.
  PatientState mixed = improving;
  mixed.disease_worsening = {true, false};
  std::string mixed_text;
  for (int i = 0; i < 6; ++i) {
    mixed_text += generator.Generate(mixed, NoteStyle::kNursing, &rng);
  }
  EXPECT_GT(count(mixed_text, "worsen") + count(mixed_text, "increas") +
                count(mixed_text, "deteriorat") + count(mixed_text, "escalat"),
            0);
  EXPECT_GT(count(mixed_text, "improv") + count(mixed_text, "resolv") +
                count(mixed_text, "stable") + count(mixed_text, "decreas"),
            0);
}

TEST_F(SynthTest, AllStylesProduceExtractableConcepts) {
  NoteGenerator generator(&kb_);
  kb::ConceptExtractor extractor(&kb_);
  const auto panel = BuildDiseasePanel(kb_);
  PatientState state;
  state.diseases = {&panel[2], &panel[6]};  // Tamponade + ARDS.
  Rng rng(3);
  for (NoteStyle style : {NoteStyle::kNursing, NoteStyle::kRadiology,
                          NoteStyle::kEcho, NoteStyle::kEcg}) {
    const std::string note = generator.Generate(state, style, &rng);
    EXPECT_FALSE(note.empty()) << NoteStyleName(style);
    EXPECT_FALSE(extractor.Extract(note).empty()) << NoteStyleName(style);
  }
}

TEST_F(SynthTest, GenerationIsDeterministicInSeed) {
  CohortConfig config;
  config.num_patients = 50;
  config.seed = 99;
  Cohort a = Cohort::Generate(config, kb_);
  Cohort b = Cohort::Generate(config, kb_);
  ASSERT_EQ(a.patients().size(), b.patients().size());
  for (size_t i = 0; i < a.patients().size(); ++i) {
    EXPECT_EQ(a.patients()[i].text, b.patients()[i].text);
    EXPECT_EQ(a.patients()[i].outcome, b.patients()[i].outcome);
  }
}

TEST_F(SynthTest, MinorsAreExcluded) {
  CohortConfig config;
  config.num_patients = 400;
  config.minor_fraction = 0.1;
  Cohort cohort = Cohort::Generate(config, kb_);
  EXPECT_GT(cohort.stats().excluded_minors, 0);
  EXPECT_EQ(cohort.stats().generated, 400);
  EXPECT_EQ(static_cast<int>(cohort.patients().size()) +
                cohort.stats().excluded_minors,
            400);
  for (const SyntheticPatient& patient : cohort.patients()) {
    EXPECT_GE(patient.age, 18);
  }
}

TEST_F(SynthTest, PrevalenceMatchesTableTwoShape) {
  CohortConfig config;
  config.num_patients = 4000;
  config.seed = 7;
  Cohort cohort = Cohort::Generate(config, kb_);
  const double n = static_cast<double>(cohort.patients().size());
  const double in_hosp = cohort.CountPositive(Horizon::kInHospital) / n;
  const double d30 = cohort.CountPositive(Horizon::kWithin30Days) / n;
  const double d365 = cohort.CountPositive(Horizon::kWithinYear) / n;
  // Table II: ~11–12% / ~15–16% / ~25–26%. Allow generous slack.
  EXPECT_GT(in_hosp, 0.06);
  EXPECT_LT(in_hosp, 0.20);
  EXPECT_GT(d30, in_hosp);          // Nesting is strict in expectation.
  EXPECT_GT(d365, d30);
  EXPECT_GT(d365, 0.15);
  EXPECT_LT(d365, 0.40);
}

TEST_F(SynthTest, OutcomeCorrelatesWithSeverity) {
  CohortConfig config;
  config.num_patients = 3000;
  Cohort cohort = Cohort::Generate(config, kb_);
  double dead_severity = 0.0, alive_severity = 0.0;
  int dead = 0, alive = 0;
  for (const SyntheticPatient& patient : cohort.patients()) {
    if (patient.outcome == MortalityOutcome::kAlive) {
      alive_severity += patient.severity;
      ++alive;
    } else {
      dead_severity += patient.severity;
      ++dead;
    }
  }
  ASSERT_GT(dead, 0);
  ASSERT_GT(alive, 0);
  EXPECT_GT(dead_severity / dead, alive_severity / alive + 0.2);
}

TEST_F(SynthTest, RadCohortMixesStyles) {
  CohortConfig config;
  config.kind = CorpusKind::kRad;
  config.num_patients = 500;
  Cohort cohort = Cohort::Generate(config, kb_);
  const auto counts = cohort.NoteCounts();
  ASSERT_TRUE(counts.count(NoteStyle::kRadiology));
  ASSERT_TRUE(counts.count(NoteStyle::kEcg));
  ASSERT_TRUE(counts.count(NoteStyle::kEcho));
  // Table I ordering: Radiology >> ECG >> Echo.
  EXPECT_GT(counts.at(NoteStyle::kRadiology), counts.at(NoteStyle::kEcg));
  EXPECT_GT(counts.at(NoteStyle::kEcg), counts.at(NoteStyle::kEcho));
}

TEST_F(SynthTest, RadNotesAreLongerThanNursing) {
  CohortConfig nursing_config;
  nursing_config.num_patients = 300;
  CohortConfig rad_config = nursing_config;
  rad_config.kind = CorpusKind::kRad;
  Cohort nursing = Cohort::Generate(nursing_config, kb_);
  Cohort rad = Cohort::Generate(rad_config, kb_);
  auto mean_length = [](const Cohort& cohort) {
    double total = 0.0;
    for (const SyntheticPatient& patient : cohort.patients()) {
      total += static_cast<double>(patient.text.size());
    }
    return total / static_cast<double>(cohort.patients().size());
  };
  // Tables III/IV: RAD documents are much longer per patient.
  EXPECT_GT(mean_length(rad), mean_length(nursing) * 1.3);
}

TEST_F(SynthTest, ConceptFreePatientsAreTracked) {
  CohortConfig config;
  config.num_patients = 500;
  config.concept_free_fraction = 0.1;
  Cohort cohort = Cohort::Generate(config, kb_);
  EXPECT_GT(cohort.stats().concept_free_patients, 10);
}

TEST_F(SynthTest, InvalidConfigRejected) {
  CohortConfig config;
  config.num_patients = 0;
  EXPECT_THROW(Cohort::Generate(config, kb_), KddnError);
}

}  // namespace
}  // namespace kddn::synth

namespace kddn::synth {
namespace {

/// Property sweep over corpus kinds and sizes.
class CohortPropertyTest
    : public ::testing::TestWithParam<std::tuple<CorpusKind, int>> {
 protected:
  CohortPropertyTest() : kb_(kb::KnowledgeBase::BuildDefault()) {}
  kb::KnowledgeBase kb_;
};

TEST_P(CohortPropertyTest, StructuralInvariants) {
  const auto [kind, patients] = GetParam();
  CohortConfig config;
  config.kind = kind;
  config.num_patients = patients;
  config.seed = 1000 + patients;
  Cohort cohort = Cohort::Generate(config, kb_);
  EXPECT_EQ(cohort.stats().generated, patients);
  EXPECT_LE(static_cast<int>(cohort.patients().size()), patients);
  for (const SyntheticPatient& patient : cohort.patients()) {
    EXPECT_GE(patient.age, 18);
    EXPECT_FALSE(patient.text.empty());
    EXPECT_FALSE(patient.disease_indices.empty());
    EXPECT_EQ(patient.disease_worsening.size(),
              patient.disease_indices.size());
    EXPECT_FALSE(patient.note_styles.empty());
    if (kind == CorpusKind::kNursing) {
      for (NoteStyle style : patient.note_styles) {
        EXPECT_EQ(style, NoteStyle::kNursing);
      }
    }
  }
  // Outcome monotonicity in expectation: severity of positives exceeds
  // negatives at the one-year horizon for any non-trivial cohort.
  if (patients >= 400) {
    double pos = 0.0, neg = 0.0;
    int npos = 0, nneg = 0;
    for (const SyntheticPatient& patient : cohort.patients()) {
      if (IsPositive(patient.outcome, Horizon::kWithinYear)) {
        pos += patient.severity;
        ++npos;
      } else {
        neg += patient.severity;
        ++nneg;
      }
    }
    if (npos > 10 && nneg > 10) {
      EXPECT_GT(pos / npos, neg / nneg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CohortPropertyTest,
    ::testing::Combine(::testing::Values(CorpusKind::kNursing,
                                         CorpusKind::kRad),
                       ::testing::Values(30, 120, 500)));

}  // namespace
}  // namespace kddn::synth
