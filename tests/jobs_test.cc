// Job-graph executor suite (DESIGN.md §14), the `jobs` label's scheduler
// half: dependency-order and exactly-once guarantees on diamond/fan-in
// shapes, cycle detection, steal-storm stress with deliberately unbalanced
// job durations, graph reuse across many generations, exception transport
// (and reusability after a failed run), nested-run inlining, the
// work-stealing ParallelForBlocked, and the generation tag on trace spans.
// The training-side half of the label — executor-vs-legacy bitwise weight
// goldens and the mid-run checkpoint/resume golden — lives in
// pipeline_test.cc, which is also labelled `jobs`. The whole label is
// `sanitize`-labelled and must stay TSan-clean.
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/job_executor.h"
#include "common/job_graph.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "gtest/gtest.h"

namespace kddn {
namespace {

/// Restores the process-wide pool size on scope exit.
struct PoolSizeGuard {
  int previous = GlobalThreadPoolSize();
  ~PoolSizeGuard() { SetGlobalThreadPoolSize(previous); }
};

/// Monotone completion stamps: each job records *when* it finished relative
/// to every other job, so dependency order is assertable after the run.
struct StampBoard {
  explicit StampBoard(int jobs) : stamps(jobs) {
    for (auto& s : stamps) {
      s.store(0, std::memory_order_relaxed);
    }
  }
  void Mark(int job) {
    stamps[job].store(clock.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  }
  uint64_t At(int job) const {
    return stamps[job].load(std::memory_order_relaxed);
  }
  std::atomic<uint64_t> clock{0};
  std::vector<std::atomic<uint64_t>> stamps;
};

/// SplitMix64 — deterministic per-job "durations" for the steal storm
/// without touching any global RNG state.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void SpinFor(uint64_t iterations) {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < iterations; ++i) {
    sink = sink + i;
  }
}

// ---------------------------------------------------------------------------
// Graph construction and canonical order.
// ---------------------------------------------------------------------------

TEST(JobGraphTest, FinalizeComputesCanonicalDiamondOrder) {
  jobs::JobGraph graph;
  // Deliberately added out of id-order-friendly sequence: D, C, B, A.
  const jobs::JobId d = graph.AddJob("d", {});
  const jobs::JobId c = graph.AddJob("c", {});
  const jobs::JobId b = graph.AddJob("b", {});
  const jobs::JobId a = graph.AddJob("a", {});
  graph.AddEdge(a, b);
  graph.AddEdge(a, c);
  graph.AddEdge(b, d);
  graph.AddEdge(c, d);
  graph.Finalize();
  ASSERT_TRUE(graph.finalized());
  // Ascending-id tie-break: a(3) first as the only root, then c(1) before
  // b(2), then d(0).
  const std::vector<jobs::JobId> expected = {a, c, b, d};
  EXPECT_EQ(graph.topological_order(), expected);
  EXPECT_EQ(graph.size(), 4);
  EXPECT_STREQ(graph.name(a), "a");
}

TEST(JobGraphTest, CycleDetectionThrowsFromFinalize) {
  jobs::JobGraph graph;
  const jobs::JobId a = graph.AddJob("a", {});
  const jobs::JobId b = graph.AddJob("b", {});
  const jobs::JobId c = graph.AddJob("c", {});
  graph.AddEdge(a, b);
  graph.AddEdge(b, c);
  graph.AddEdge(c, a);
  EXPECT_THROW(graph.Finalize(), KddnError);
}

TEST(JobGraphTest, BuildTimeMisuseIsLoud) {
  jobs::JobGraph graph;
  const jobs::JobId a = graph.AddJob("a", {});
  EXPECT_THROW(graph.AddEdge(a, a), KddnError);        // Self-edge.
  EXPECT_THROW(graph.AddEdge(a, a + 7), KddnError);    // Out of range.
  graph.Finalize();
  EXPECT_THROW(graph.AddJob("late", {}), KddnError);   // Post-Finalize.
  EXPECT_THROW(graph.Finalize(), KddnError);           // Double Finalize.
  jobs::JobGraph unfinalized;
  unfinalized.AddJob("a", {});
  jobs::JobExecutor executor(&GlobalThreadPool());
  EXPECT_THROW(executor.Run(&unfinalized), KddnError);  // Run pre-Finalize.
}

// ---------------------------------------------------------------------------
// Execution order: diamond and fan-in, at every pool size.
// ---------------------------------------------------------------------------

TEST(JobExecutorTest, DiamondRespectsDependencyOrderAtEveryPoolSize) {
  PoolSizeGuard guard;
  for (const int pool_size : {1, 2, 4}) {
    SetGlobalThreadPoolSize(pool_size);
    StampBoard board(4);
    jobs::JobGraph graph;
    const jobs::JobId a = graph.AddJob("a", [&] { board.Mark(0); });
    const jobs::JobId b = graph.AddJob("b", [&] { board.Mark(1); });
    const jobs::JobId c = graph.AddJob("c", [&] { board.Mark(2); });
    const jobs::JobId d = graph.AddJob("d", [&] { board.Mark(3); });
    graph.AddEdge(a, b);
    graph.AddEdge(a, c);
    graph.AddEdge(b, d);
    graph.AddEdge(c, d);
    graph.Finalize();
    jobs::JobExecutor(&GlobalThreadPool()).Run(&graph);
    const std::string tag = "pool=" + std::to_string(pool_size);
    for (int j = 0; j < 4; ++j) {
      EXPECT_GT(board.At(j), 0u) << tag << " job " << j << " never ran";
    }
    EXPECT_LT(board.At(0), board.At(1)) << tag;
    EXPECT_LT(board.At(0), board.At(2)) << tag;
    EXPECT_LT(board.At(1), board.At(3)) << tag;
    EXPECT_LT(board.At(2), board.At(3)) << tag;
  }
}

TEST(JobExecutorTest, FanInSinkRunsOnceAfterAllPredecessors) {
  PoolSizeGuard guard;
  SetGlobalThreadPoolSize(4);
  constexpr int kSources = 24;
  StampBoard board(kSources + 1);
  std::atomic<int> sink_runs{0};
  jobs::JobGraph graph;
  const jobs::JobId sink = graph.AddJob("sink", [&] {
    board.Mark(kSources);
    sink_runs.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kSources; ++i) {
    const jobs::JobId source = graph.AddJob("source", [&, i] {
      SpinFor(Mix(static_cast<uint64_t>(i)) % 2000);
      board.Mark(i);
    });
    graph.AddEdge(source, sink);
  }
  graph.Finalize();
  jobs::JobExecutor(&GlobalThreadPool()).Run(&graph);
  EXPECT_EQ(sink_runs.load(), 1);
  for (int i = 0; i < kSources; ++i) {
    EXPECT_LT(board.At(i), board.At(kSources)) << "source " << i;
  }
}

// ---------------------------------------------------------------------------
// Steal storm: layered graph, wildly unbalanced durations, many runs.
// ---------------------------------------------------------------------------

TEST(JobExecutorTest, StealStormRunsEveryJobExactlyOncePerRun) {
  PoolSizeGuard guard;
  SetGlobalThreadPoolSize(4);
  constexpr int kLayers = 8;
  constexpr int kWidth = 12;
  constexpr int kRuns = 25;
  constexpr int kJobs = kLayers * kWidth;
  std::vector<std::atomic<int>> run_counts(kJobs);
  for (auto& c : run_counts) {
    c.store(0, std::memory_order_relaxed);
  }
  StampBoard board(kJobs);

  jobs::JobGraph graph;
  std::vector<jobs::JobId> previous_layer, layer;
  for (int l = 0; l < kLayers; ++l) {
    layer.clear();
    for (int w = 0; w < kWidth; ++w) {
      const int index = l * kWidth + w;
      layer.push_back(graph.AddJob("storm", [&, index] {
        // Durations spread over two orders of magnitude, reshuffled every
        // layer, so fast lanes drain and must steal from slow ones.
        SpinFor(Mix(static_cast<uint64_t>(index)) % 10000);
        board.Mark(index);
        run_counts[index].fetch_add(1, std::memory_order_relaxed);
      }));
      // Sparse cross-layer edges: each job depends on two jobs of the layer
      // above (wrap-around), leaving plenty of concurrency to fight over.
      if (l > 0) {
        graph.AddEdge(previous_layer[w], layer[w]);
        graph.AddEdge(previous_layer[(w + 5) % kWidth], layer[w]);
      }
    }
    previous_layer = layer;
  }
  graph.Finalize();

  jobs::JobExecutor executor(&GlobalThreadPool());
  for (int run = 1; run <= kRuns; ++run) {
    executor.Run(&graph);
    for (int j = 0; j < kJobs; ++j) {
      ASSERT_EQ(run_counts[j].load(), run) << "job " << j << " run " << run;
    }
    // Spot-check the cross-layer constraints on the final stamps.
    for (int l = 1; l < kLayers; ++l) {
      for (int w = 0; w < kWidth; ++w) {
        ASSERT_LT(board.At((l - 1) * kWidth + w), board.At(l * kWidth + w));
      }
    }
  }
  EXPECT_EQ(graph.generation(), static_cast<uint64_t>(kRuns));
}

TEST(JobExecutorTest, GraphReuseAcrossManyGenerationsAccumulatesExactly) {
  PoolSizeGuard guard;
  SetGlobalThreadPoolSize(2);
  std::atomic<int64_t> total{0};
  jobs::JobGraph graph;
  const jobs::JobId add1 =
      graph.AddJob("add1", [&] { total.fetch_add(1, std::memory_order_relaxed); });
  const jobs::JobId add10 =
      graph.AddJob("add10", [&] { total.fetch_add(10, std::memory_order_relaxed); });
  const jobs::JobId add100 = graph.AddJob(
      "add100", [&] { total.fetch_add(100, std::memory_order_relaxed); });
  graph.AddEdge(add1, add10);
  graph.AddEdge(add10, add100);
  graph.Finalize();
  jobs::JobExecutor executor(&GlobalThreadPool());
  for (int i = 0; i < 100; ++i) {
    executor.Run(&graph);
  }
  EXPECT_EQ(total.load(), 100 * 111);
  EXPECT_EQ(graph.generation(), 100u);
}

// ---------------------------------------------------------------------------
// Exceptions: first error wins, the run drains, the graph stays reusable.
// ---------------------------------------------------------------------------

TEST(JobExecutorTest, ExceptionPropagatesAndGraphStaysReusable) {
  PoolSizeGuard guard;
  for (const int pool_size : {1, 4}) {
    SetGlobalThreadPoolSize(pool_size);
    bool fail = true;
    std::atomic<int> tail_runs{0};
    jobs::JobGraph graph;
    const jobs::JobId boom = graph.AddJob("boom", [&] {
      if (fail) {
        KDDN_CHECK(false) << "injected job failure";
      }
    });
    const jobs::JobId tail = graph.AddJob(
        "tail", [&] { tail_runs.fetch_add(1, std::memory_order_relaxed); });
    graph.AddEdge(boom, tail);
    graph.Finalize();
    jobs::JobExecutor executor(&GlobalThreadPool());
    EXPECT_THROW(executor.Run(&graph), KddnError);
    // A failed run is cancelled, not counted: successors of the failing job
    // are skipped and the generation stays put.
    EXPECT_EQ(tail_runs.load(), 0) << "pool=" << pool_size;
    EXPECT_EQ(graph.generation(), 0u) << "pool=" << pool_size;
    // The countdown drained, so the same graph runs clean immediately.
    fail = false;
    executor.Run(&graph);
    EXPECT_EQ(tail_runs.load(), 1) << "pool=" << pool_size;
    EXPECT_EQ(graph.generation(), 1u) << "pool=" << pool_size;
  }
}

// ---------------------------------------------------------------------------
// Nesting: job bodies may use the pool (or another graph) — it inlines.
// ---------------------------------------------------------------------------

TEST(JobExecutorTest, NestedParallelismInsideJobBodiesInlinesWithoutDeadlock) {
  PoolSizeGuard guard;
  SetGlobalThreadPoolSize(4);
  std::atomic<int64_t> nested_sum{0};
  std::atomic<uint64_t> inner_generation{0};
  jobs::JobGraph inner;
  inner.AddJob("inner", [&] { nested_sum.fetch_add(1); });
  inner.Finalize();
  jobs::JobGraph graph;
  for (int i = 0; i < 8; ++i) {
    graph.AddJob("outer", [&] {
      // Nested fork/join region: must inline on the executor lane (a lane
      // blocking on pool sub-tasks could deadlock the run).
      GlobalThreadPool().ParallelFor(
          16, [&](int64_t) { nested_sum.fetch_add(1); });
      // Nested executor run: takes the inline path for the same reason.
      jobs::JobExecutor(&GlobalThreadPool()).Run(&inner);
      inner_generation.store(inner.generation());
    });
  }
  graph.Finalize();
  jobs::JobExecutor(&GlobalThreadPool()).Run(&graph);
  EXPECT_EQ(nested_sum.load(), 8 * 16 + 8);
  EXPECT_EQ(inner_generation.load(), 8u);
}

// ---------------------------------------------------------------------------
// Work-stealing ParallelForBlocked.
// ---------------------------------------------------------------------------

TEST(JobExecutorTest, ParallelForBlockedCoversEveryIndexExactlyOnce) {
  PoolSizeGuard guard;
  for (const int pool_size : {1, 2, 4}) {
    SetGlobalThreadPoolSize(pool_size);
    jobs::JobExecutor executor(&GlobalThreadPool());
    for (const int64_t count : {int64_t{1}, int64_t{7}, int64_t{64},
                                int64_t{1000}}) {
      std::vector<std::atomic<int>> touched(static_cast<size_t>(count));
      for (auto& t : touched) {
        t.store(0, std::memory_order_relaxed);
      }
      executor.ParallelForBlocked(count, 1, [&](int64_t begin, int64_t end) {
        ASSERT_LT(begin, end);
        SpinFor(Mix(static_cast<uint64_t>(begin)) % 3000);
        for (int64_t i = begin; i < end; ++i) {
          touched[static_cast<size_t>(i)].fetch_add(
              1, std::memory_order_relaxed);
        }
      });
      for (int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(touched[static_cast<size_t>(i)].load(), 1)
            << "pool=" << pool_size << " count=" << count << " index " << i;
      }
    }
    // Exceptions come back to the caller, whole and first-wins.
    EXPECT_THROW(executor.ParallelForBlocked(
                     100, 1,
                     [&](int64_t begin, int64_t) {
                       if (begin == 0) {
                         KDDN_CHECK(false) << "injected block failure";
                       }
                     }),
                 KddnError);
  }
}

// ---------------------------------------------------------------------------
// Observability: every job span carries the graph generation as an arg.
// ---------------------------------------------------------------------------

TEST(JobsTraceTest, JobSpansCarryGraphGenerationArg) {
  PoolSizeGuard guard;
  SetGlobalThreadPoolSize(2);
  trace::Clear();
  trace::SetEnabled(true);
  jobs::JobGraph graph;
  const jobs::JobId a = graph.AddJob("jobs.test.alpha", [] {});
  const jobs::JobId b = graph.AddJob("jobs.test.beta", [] {});
  graph.AddEdge(a, b);
  graph.Finalize();
  jobs::JobExecutor executor(&GlobalThreadPool());
  executor.Run(&graph);
  executor.Run(&graph);
  trace::SetEnabled(false);
  const std::string json = trace::ToChromeJson(trace::Snapshot());
  trace::Clear();
  // Both generations appear: the first run tagged 0, the second tagged 1.
  EXPECT_NE(json.find("\"name\":\"jobs.test.alpha\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"gen\":0}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"gen\":1}"), std::string::npos) << json;
}

}  // namespace
}  // namespace kddn
