// Performance-architecture tests (DESIGN.md §9): the cache-blocked GEMM
// kernels must match the retained naive reference bitwise at awkward shapes,
// the TensorPool must recycle storage without leaking stale bytes into
// results, the row tracker must obey its marking rules, and — the end-to-end
// guarantee — row-sparse embedding updates must train to bitwise-identical
// weights as the dense path at any thread count.
#include <cstring>
#include <utility>
#include <vector>

#include "autograd/node.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/knowledge_base.h"
#include "models/bk_ddn.h"
#include "nn/optimizer.h"
#include "synth/cohort.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_pool.h"

namespace kddn {
namespace {

/// Restores the process-wide GEMM kernel mode on scope exit.
struct GemmKernelGuard {
  GemmKernel previous = GetGemmKernel();
  ~GemmKernelGuard() { SetGemmKernel(previous); }
};

/// Restores the process-wide sparse-gradient mode on scope exit.
struct SparseModeGuard {
  bool previous = ag::SparseGradientsEnabled();
  ~SparseModeGuard() { ag::SetSparseGradients(previous); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

/// Sweeps sub-tile, prime, and just-past-tile extents through all three
/// matmul forms, comparing the blocked kernels to the naive reference
/// bitwise. 256 and 301 in the k sweep cross the kGemmKc chunk boundary.
TEST(GemmKernelTest, BlockedMatchesNaiveBitwiseAcrossShapes) {
  GemmKernelGuard guard;
  Rng rng(123);
  const std::vector<int> extents = {1, 2, 3, 7, 17, 64, 65};
  std::vector<int> k_extents = extents;
  k_extents.push_back(256);
  k_extents.push_back(301);
  for (int m : extents) {
    for (int k : k_extents) {
      for (int n : extents) {
        const Tensor a = RandomNormal({m, k}, 0, 1, &rng);
        const Tensor b = RandomNormal({k, n}, 0, 1, &rng);
        const Tensor bt = RandomNormal({n, k}, 0, 1, &rng);
        const Tensor at = RandomNormal({k, m}, 0, 1, &rng);
        SetGemmKernel(GemmKernel::kNaive);
        const Tensor naive_nn = MatMul(a, b);
        const Tensor naive_nt = MatMulABt(a, bt);
        const Tensor naive_tn = MatMulAtB(at, b);
        SetGemmKernel(GemmKernel::kBlocked);
        const std::string shape = " at m=" + std::to_string(m) +
                                  " k=" + std::to_string(k) +
                                  " n=" + std::to_string(n);
        ExpectBitwiseEqual(MatMul(a, b), naive_nn, "MatMul" + shape);
        ExpectBitwiseEqual(MatMulABt(a, bt), naive_nt, "MatMulABt" + shape);
        ExpectBitwiseEqual(MatMulAtB(at, b), naive_tn, "MatMulAtB" + shape);
      }
    }
  }
}

/// Zeros scattered through the operands exercise the one arithmetic
/// difference between the kernels: the naive loops skip zero multiplicands,
/// the blocked ones multiply through. Adding a*0 must not change any bit.
TEST(GemmKernelTest, ZeroRichOperandsStillMatchBitwise) {
  GemmKernelGuard guard;
  Rng rng(321);
  Tensor a = RandomNormal({17, 65}, 0, 1, &rng);
  Tensor b = RandomNormal({65, 7}, 0, 1, &rng);
  for (int64_t i = 0; i < a.size(); i += 3) {
    a.data()[i] = 0.0f;
  }
  for (int64_t i = 0; i < b.size(); i += 2) {
    b.data()[i] = -0.0f;
  }
  SetGemmKernel(GemmKernel::kNaive);
  const Tensor naive = MatMul(a, b);
  SetGemmKernel(GemmKernel::kBlocked);
  ExpectBitwiseEqual(MatMul(a, b), naive, "zero-rich MatMul");
}

TEST(GemmKernelTest, IntoVariantsMatchAllocatingForms) {
  Rng rng(55);
  const Tensor a = RandomNormal({9, 33}, 0, 1, &rng);
  const Tensor b = RandomNormal({33, 5}, 0, 1, &rng);
  const Tensor bt = RandomNormal({5, 33}, 0, 1, &rng);
  const Tensor at = RandomNormal({33, 9}, 0, 1, &rng);
  Tensor out;
  MatMulInto(&out, a, b);
  ExpectBitwiseEqual(out, MatMul(a, b), "MatMulInto");
  MatMulABtInto(&out, a, bt);  // Reuses the same storage across shapes.
  ExpectBitwiseEqual(out, MatMulABt(a, bt), "MatMulABtInto");
  MatMulAtBInto(&out, at, b);
  ExpectBitwiseEqual(out, MatMulAtB(at, b), "MatMulAtBInto");
  SoftmaxRowsInto(&out, a);
  ExpectBitwiseEqual(out, SoftmaxRows(a), "SoftmaxRowsInto");
}

TEST(TensorPoolTest, RecycledStorageIsReusedAndRezeroed) {
  TensorPool& pool = TensorPool::ThreadLocal();
  pool.Trim();
  Tensor t = pool.Acquire({4, 5});
  t.Fill(3.5f);  // Dirty the buffer before recycling.
  const int64_t reuses_before = pool.reuses();
  pool.Recycle(std::move(t));
  Tensor again = pool.Acquire({5, 4});  // Same element count, new shape.
  EXPECT_EQ(pool.reuses(), reuses_before + 1);
  for (int64_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.data()[i], 0.0f) << "stale bytes leaked at " << i;
  }
}

TEST(TensorPoolTest, AcquireCopyMatchesSource) {
  TensorPool& pool = TensorPool::ThreadLocal();
  Rng rng(9);
  const Tensor src = RandomNormal({3, 7}, 0, 1, &rng);
  const Tensor copy = pool.AcquireCopy(src);
  ExpectBitwiseEqual(copy, src, "AcquireCopy");
}

TEST(TensorPoolTest, BestFitPrefersSmallestSufficientBuffer) {
  TensorPool& pool = TensorPool::ThreadLocal();
  pool.Trim();
  const int64_t allocations_before = pool.allocations();
  pool.Recycle(pool.AcquireUninit({100}));
  pool.Recycle(pool.AcquireUninit({10}));
  // Wants 8 floats: both cached buffers fit, the 10-float one is the best
  // fit and must be chosen — leaving the 100-float buffer to serve the
  // 90-float ask below. A worst-fit pool would have to allocate here.
  Tensor small = pool.Acquire({8});
  Tensor big = pool.AcquireUninit({90});
  EXPECT_EQ(pool.allocations(), allocations_before + 2);  // Seeds only.
}

TEST(SparseRowsTest, TracksDeduplicatedRowsAndDenseAbsorbs) {
  ag::SparseRows tracker;
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kClean);
  tracker.MarkRows({3, 1, 3, 1, 5}, 8);
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kSparse);
  EXPECT_EQ(tracker.rows(), (std::vector<int>{3, 1, 5}));
  tracker.MarkDense();
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kDense);
  // Dense absorbs later row marks...
  tracker.MarkRows({0}, 8);
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kDense);
  // ...but keeps the earlier row list readable for in-flight captures.
  EXPECT_EQ(tracker.rows(), (std::vector<int>{3, 1, 5}));
  tracker.Clear();
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kClean);
  tracker.MarkRows({2}, 8);  // Membership bits must have been reset.
  EXPECT_EQ(tracker.rows(), (std::vector<int>{2}));
}

/// One embedding backward + Adagrad step, sparse vs dense mode, on identical
/// tables: values and gradients must end bitwise identical, and repeated ids
/// must accumulate exactly once per occurrence.
TEST(SparseAdagradTest, StepBitwiseEqualToDense) {
  SparseModeGuard guard;
  Rng rng(4242);
  const Tensor init = RandomNormal({12, 4}, 0, 0.5f, &rng);
  const std::vector<int> ids = {0, 7, 7, 3, 0};

  auto run = [&](bool sparse) {
    ag::SetSparseGradients(sparse);
    ag::NodePtr table = ag::Node::Leaf(init, true, "emb.table");
    nn::Adagrad opt(0.1f);
    for (int step = 0; step < 3; ++step) {
      ag::NodePtr e = ag::EmbeddingLookup(table, ids);
      ag::Backward(ag::MeanAll(ag::Mul(e, e)));
      if (sparse) {
        EXPECT_EQ(table->grad_rows().state(), ag::SparseRows::State::kSparse)
            << "step " << step;
        EXPECT_EQ(table->grad_rows().rows(), (std::vector<int>{0, 7, 3}));
      }
      opt.Step({table});
      EXPECT_EQ(table->grad_rows().state(), ag::SparseRows::State::kClean);
    }
    return std::make_pair(table->value(), opt.ExportState());
  };

  const auto [dense_value, dense_state] = run(false);
  const auto [sparse_value, sparse_state] = run(true);
  ExpectBitwiseEqual(sparse_value, dense_value, "table value");
  ASSERT_EQ(sparse_state.size(), dense_state.size());
  for (size_t i = 0; i < dense_state.size(); ++i) {
    EXPECT_EQ(sparse_state[i].first, dense_state[i].first);
    ExpectBitwiseEqual(sparse_state[i].second, dense_state[i].second,
                       "accumulator " + dense_state[i].first);
  }
}

/// End-to-end golden: BK-DDN trained with sparse embedding updates must
/// reach bitwise-identical weights as the dense path, at 1 and 4 threads
/// (the GradSink merge/reset paths differ per thread count).
class SparseTrainingEquivalenceTest : public ::testing::Test {
 protected:
  SparseTrainingEquivalenceTest()
      : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 120;
    config.seed = 91;
    cohort_ = synth::Cohort::Generate(config, kb_);
    data::DatasetOptions options;
    options.max_words = 48;
    options.max_concepts = 24;
    dataset_ = data::MortalityDataset::Build(cohort_, extractor_, options);
  }

  std::vector<Tensor> TrainOnce(bool sparse, int num_threads) {
    models::ModelConfig config;
    config.word_vocab_size = dataset_.word_vocab().size();
    config.concept_vocab_size = dataset_.concept_vocab().size();
    config.embedding_dim = 6;
    config.num_filters = 4;
    config.seed = 17;
    models::BkDdn model(config);
    core::TrainOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.seed = 13;
    options.num_threads = num_threads;
    options.sparse_embedding_updates = sparse;
    core::Trainer trainer(options);
    trainer.Train(&model, dataset_.train(), dataset_.validation(),
                  synth::Horizon::kInHospital);
    std::vector<Tensor> params;
    for (const ag::NodePtr& param : model.params().all()) {
      params.push_back(param->value());
    }
    return params;
  }

  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
  data::MortalityDataset dataset_;
};

TEST_F(SparseTrainingEquivalenceTest, SparseMatchesDenseBitwise) {
  const std::vector<Tensor> golden = TrainOnce(/*sparse=*/false,
                                               /*num_threads=*/1);
  ASSERT_FALSE(golden.empty());
  for (const bool sparse : {false, true}) {
    for (const int threads : {1, 4}) {
      if (!sparse && threads == 1) {
        continue;  // That is the golden run itself.
      }
      const std::vector<Tensor> params = TrainOnce(sparse, threads);
      ASSERT_EQ(params.size(), golden.size());
      for (size_t i = 0; i < params.size(); ++i) {
        ASSERT_TRUE(params[i].SameShape(golden[i]));
        EXPECT_EQ(std::memcmp(params[i].data(), golden[i].data(),
                              params[i].size() * sizeof(float)),
                  0)
            << "param " << i << " differs (sparse=" << sparse
            << ", threads=" << threads << ")";
      }
    }
  }
}

}  // namespace
}  // namespace kddn
