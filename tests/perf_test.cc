// Performance-architecture tests (DESIGN.md §9): the runtime-dispatched SIMD
// GEMM kernels must match the scalar lane-faithful reference bitwise at every
// awkward shape, lane remainder, thread count, and special-value pattern; the
// dispatch logic must pick the widest compiled-in ISA and honour the
// force-scalar override; the TensorPool must recycle storage without leaking
// stale bytes into results; the row tracker must obey its marking rules; and
// — the end-to-end guarantees — row-sparse embedding updates must train to
// bitwise-identical weights as the dense path at any thread count, and a
// checkpoint written under the scalar kernel must resume bitwise-identically
// under the SIMD kernel.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "autograd/node.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "common/cpu_features.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/knowledge_base.h"
#include "models/bk_ddn.h"
#include "nn/optimizer.h"
#include "synth/cohort.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "tensor/tensor_pool.h"

namespace kddn {
namespace {

/// Restores the process-wide GEMM kernel mode on scope exit.
struct GemmKernelGuard {
  GemmKernel previous = GetGemmKernel();
  ~GemmKernelGuard() { SetGemmKernel(previous); }
};

/// Restores the process-wide sparse-gradient mode on scope exit.
struct SparseModeGuard {
  bool previous = ag::SparseGradientsEnabled();
  ~SparseModeGuard() { ag::SetSparseGradients(previous); }
};

/// Restores the global thread pool size on scope exit.
struct ThreadPoolGuard {
  int previous = GlobalThreadPoolSize();
  ~ThreadPoolGuard() { SetGlobalThreadPoolSize(previous); }
};

/// A fresh scratch directory under the test temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "kddn_perf_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

/// Runs all three matmul forms under the given kernel mode.
struct GemmResults {
  Tensor nn, nt, tn;
};

GemmResults RunAllForms(GemmKernel kernel, const Tensor& a, const Tensor& b,
                        const Tensor& bt, const Tensor& at) {
  SetGemmKernel(kernel);
  return {MatMul(a, b), MatMulABt(a, bt), MatMulAtB(at, b)};
}

/// Sweeps sub-tile, prime, and just-past-tile extents through all three
/// matmul forms. The dispatched SIMD kernels (kAuto) must match the scalar
/// lane-faithful reference (kScalar) bitwise everywhere; the NN and TN forms
/// must additionally match the retained naive loops, whose plain ascending-k
/// chain IS their canonical order on finite inputs. (The NT form's canonical
/// order is the lane-split reduction, so naive NT is intentionally not
/// comparable.) 256 and 301 in the k sweep cross the kGemmKc chunk boundary.
TEST(GemmKernelTest, SimdMatchesScalarReferenceAcrossShapes) {
  GemmKernelGuard guard;
  Rng rng(123);
  const std::vector<int> extents = {1, 2, 3, 7, 17, 64, 65};
  std::vector<int> k_extents = extents;
  k_extents.push_back(256);
  k_extents.push_back(301);
  for (int m : extents) {
    for (int k : k_extents) {
      for (int n : extents) {
        const Tensor a = RandomNormal({m, k}, 0, 1, &rng);
        const Tensor b = RandomNormal({k, n}, 0, 1, &rng);
        const Tensor bt = RandomNormal({n, k}, 0, 1, &rng);
        const Tensor at = RandomNormal({k, m}, 0, 1, &rng);
        const GemmResults naive = RunAllForms(GemmKernel::kNaive, a, b, bt, at);
        const GemmResults scalar =
            RunAllForms(GemmKernel::kScalar, a, b, bt, at);
        const GemmResults simd = RunAllForms(GemmKernel::kAuto, a, b, bt, at);
        const std::string shape = " at m=" + std::to_string(m) +
                                  " k=" + std::to_string(k) +
                                  " n=" + std::to_string(n);
        ExpectBitwiseEqual(simd.nn, scalar.nn, "simd MatMul" + shape);
        ExpectBitwiseEqual(simd.nt, scalar.nt, "simd MatMulABt" + shape);
        ExpectBitwiseEqual(simd.tn, scalar.tn, "simd MatMulAtB" + shape);
        ExpectBitwiseEqual(scalar.nn, naive.nn, "naive MatMul" + shape);
        ExpectBitwiseEqual(scalar.tn, naive.tn, "naive MatMulAtB" + shape);
      }
    }
  }
}

/// The lane-remainder sweep: every k tail length against kGemmLanes (1 ..
/// 2*lanes+1), primes, and the kGemmKc chunk boundary (kc-1, kc, kc+1,
/// 2*kc+3), at 1, 2 and 4 pool threads. The accumulation order is a property
/// of the shape alone, so the dispatched kernel must reproduce the scalar
/// reference bitwise at every (k, threads) point, and the reference must
/// reproduce itself across thread counts. At m=n=64 the larger k values
/// clear the parallel-matmul FLOP threshold, so threads>1 genuinely split
/// the row range.
TEST(GemmKernelTest, LaneRemainderSweepAcrossThreads) {
  GemmKernelGuard guard;
  ThreadPoolGuard pool_guard;
  Rng rng(777);
  std::vector<int> k_extents;
  for (int k = 1; k <= 2 * detail::kGemmLanes + 1; ++k) {
    k_extents.push_back(k);  // 1 .. 17: every remainder class, twice.
  }
  for (int k : {19, 23, 29, 31, detail::kGemmKc - 1, detail::kGemmKc,
                detail::kGemmKc + 1, 2 * detail::kGemmKc + 3}) {
    k_extents.push_back(k);
  }
  const int m = 64, n = 64;
  for (int k : k_extents) {
    const Tensor a = RandomNormal({m, k}, 0, 1, &rng);
    const Tensor b = RandomNormal({k, n}, 0, 1, &rng);
    const Tensor bt = RandomNormal({n, k}, 0, 1, &rng);
    const Tensor at = RandomNormal({k, m}, 0, 1, &rng);
    SetGlobalThreadPoolSize(1);
    const GemmResults ref = RunAllForms(GemmKernel::kScalar, a, b, bt, at);
    for (int threads : {1, 2, 4}) {
      SetGlobalThreadPoolSize(threads);
      const std::string where =
          " at k=" + std::to_string(k) + " threads=" + std::to_string(threads);
      const GemmResults scalar =
          RunAllForms(GemmKernel::kScalar, a, b, bt, at);
      ExpectBitwiseEqual(scalar.nn, ref.nn, "scalar MatMul" + where);
      ExpectBitwiseEqual(scalar.nt, ref.nt, "scalar MatMulABt" + where);
      ExpectBitwiseEqual(scalar.tn, ref.tn, "scalar MatMulAtB" + where);
      const GemmResults simd = RunAllForms(GemmKernel::kAuto, a, b, bt, at);
      ExpectBitwiseEqual(simd.nn, ref.nn, "simd MatMul" + where);
      ExpectBitwiseEqual(simd.nt, ref.nt, "simd MatMulABt" + where);
      ExpectBitwiseEqual(simd.tn, ref.tn, "simd MatMulAtB" + where);
    }
  }
}

/// Element-wise comparison for the special-values test: every non-NaN
/// result must agree bit-for-bit (signed zeros and infinities included),
/// and NaN-ness must agree — but NaN *payloads* are exempt. They are the
/// one thing the kernels cannot contract: C++ lets the compiler commute
/// `a * b`, and x86's mul/add return the payload of whichever NaN operand
/// comes first, so identical operation *orders* can still surface different
/// payload bits. Nothing downstream reads payloads.
void ExpectBitwiseEqualModuloNanPayload(const Tensor& a, const Tensor& b,
                                        const std::string& what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float x = a.data()[i];
    const float y = b.data()[i];
    if (std::isnan(x) || std::isnan(y)) {
      EXPECT_TRUE(std::isnan(x) && std::isnan(y))
          << what << ": NaN-ness differs at " << i << " (" << x << " vs " << y
          << ")";
    } else {
      EXPECT_EQ(std::memcmp(&x, &y, sizeof(float)), 0)
          << what << ": bits differ at " << i << " (" << x << " vs " << y
          << ")";
    }
  }
}

/// Special values: signed zeros, denormals, infinities and NaNs sprinkled
/// through both operands. The SIMD kernels execute the same IEEE operations
/// in the same order as the scalar reference, so results must agree
/// bit-for-bit except for NaN payloads (see above).
TEST(GemmKernelTest, SpecialValuesMatchScalarBitwise) {
  GemmKernelGuard guard;
  Rng rng(2024);
  const int m = 9, k = 300, n = 11;  // k crosses the kGemmKc chunk boundary.
  Tensor a = RandomNormal({m, k}, 0, 1, &rng);
  Tensor b = RandomNormal({k, n}, 0, 1, &rng);
  Tensor bt = RandomNormal({n, k}, 0, 1, &rng);
  Tensor at = RandomNormal({k, m}, 0, 1, &rng);
  const float specials[] = {0.0f, -0.0f, 1e-42f, -1e-42f, INFINITY,
                            -INFINITY, NAN};
  constexpr int kNumSpecials = 7;
  auto sprinkle = [&](Tensor* t, int phase) {
    for (int64_t i = phase; i < t->size(); i += 5) {
      t->data()[i] = specials[(i / 5 + phase) % kNumSpecials];
    }
  };
  sprinkle(&a, 0);
  sprinkle(&b, 1);
  sprinkle(&bt, 2);
  sprinkle(&at, 3);
  const GemmResults scalar = RunAllForms(GemmKernel::kScalar, a, b, bt, at);
  const GemmResults simd = RunAllForms(GemmKernel::kAuto, a, b, bt, at);
  ExpectBitwiseEqualModuloNanPayload(simd.nn, scalar.nn,
                                     "special-value MatMul");
  ExpectBitwiseEqualModuloNanPayload(simd.nt, scalar.nt,
                                     "special-value MatMulABt");
  ExpectBitwiseEqualModuloNanPayload(simd.tn, scalar.tn,
                                     "special-value MatMulAtB");
}

/// Zeros scattered through the operands exercise the one arithmetic
/// difference between the production kernels and the naive loops: naive
/// skips zero multiplicands, the others multiply through. Adding a*0 must
/// not change any bit of an NN result.
TEST(GemmKernelTest, ZeroRichOperandsStillMatchBitwise) {
  GemmKernelGuard guard;
  Rng rng(321);
  Tensor a = RandomNormal({17, 65}, 0, 1, &rng);
  Tensor b = RandomNormal({65, 7}, 0, 1, &rng);
  for (int64_t i = 0; i < a.size(); i += 3) {
    a.data()[i] = 0.0f;
  }
  for (int64_t i = 0; i < b.size(); i += 2) {
    b.data()[i] = -0.0f;
  }
  SetGemmKernel(GemmKernel::kNaive);
  const Tensor naive = MatMul(a, b);
  SetGemmKernel(GemmKernel::kScalar);
  ExpectBitwiseEqual(MatMul(a, b), naive, "zero-rich scalar MatMul");
  SetGemmKernel(GemmKernel::kAuto);
  ExpectBitwiseEqual(MatMul(a, b), naive, "zero-rich simd MatMul");
}

TEST(GemmKernelTest, IntoVariantsMatchAllocatingForms) {
  Rng rng(55);
  const Tensor a = RandomNormal({9, 33}, 0, 1, &rng);
  const Tensor b = RandomNormal({33, 5}, 0, 1, &rng);
  const Tensor bt = RandomNormal({5, 33}, 0, 1, &rng);
  const Tensor at = RandomNormal({33, 9}, 0, 1, &rng);
  Tensor out;
  MatMulInto(&out, a, b);
  ExpectBitwiseEqual(out, MatMul(a, b), "MatMulInto");
  MatMulABtInto(&out, a, bt);  // Reuses the same storage across shapes.
  ExpectBitwiseEqual(out, MatMulABt(a, bt), "MatMulABtInto");
  MatMulAtBInto(&out, at, b);
  ExpectBitwiseEqual(out, MatMulAtB(at, b), "MatMulAtBInto");
  SoftmaxRowsInto(&out, a);
  ExpectBitwiseEqual(out, SoftmaxRows(a), "SoftmaxRowsInto");
}

// ---------------------------------------------------------------------------
// Dispatch logic: pure selection over synthetic feature sets, the env
// override, and the names surfaced through /v1/stats and the microbench.
// ---------------------------------------------------------------------------

bool IsKnownIsa(const char* isa) {
  return std::strcmp(isa, "avx2") == 0 || std::strcmp(isa, "sse2") == 0 ||
         std::strcmp(isa, "neon") == 0 || std::strcmp(isa, "scalar") == 0;
}

TEST(GemmDispatchTest, SelectsWidestCompiledIsa) {
  CpuFeatures f;  // All false: nothing supported -> scalar, unconditionally.
  EXPECT_STREQ(detail::SelectGemmImpl(f, false).isa, "scalar");

  f.avx2 = f.sse2 = true;
  const detail::GemmSimdKernels wide = detail::SelectGemmImpl(f, false);
  if (detail::GetGemmKernelsAvx2() != nullptr) {
    EXPECT_STREQ(wide.isa, "avx2");
  } else if (detail::GetGemmKernelsSse2() != nullptr) {
    EXPECT_STREQ(wide.isa, "sse2");
  } else {
    EXPECT_STREQ(wide.isa, "scalar");
  }

  CpuFeatures sse_only;
  sse_only.sse2 = true;  // AVX2 claimed absent: must not pick avx2.
  const detail::GemmSimdKernels narrow = detail::SelectGemmImpl(sse_only, false);
  EXPECT_TRUE(std::strcmp(narrow.isa, "sse2") == 0 ||
              std::strcmp(narrow.isa, "scalar") == 0)
      << narrow.isa;

  CpuFeatures arm;
  arm.neon = true;
  const detail::GemmSimdKernels neon = detail::SelectGemmImpl(arm, false);
  EXPECT_TRUE(std::strcmp(neon.isa, "neon") == 0 ||
              std::strcmp(neon.isa, "scalar") == 0)
      << neon.isa;

  // Every selection returns a complete kernel set.
  for (const auto& impl : {wide, narrow, neon}) {
    EXPECT_NE(impl.nn, nullptr);
    EXPECT_NE(impl.tn, nullptr);
    EXPECT_NE(impl.nt, nullptr);
  }
}

TEST(GemmDispatchTest, ForceScalarOverridesEveryFeatureSet) {
  CpuFeatures f;
  f.avx2 = f.sse2 = f.neon = true;
  EXPECT_STREQ(detail::SelectGemmImpl(f, true).isa, "scalar");
}

TEST(GemmDispatchTest, EnvResolverHonoursForceScalar) {
  const char* saved = std::getenv("KDDN_FORCE_SCALAR_GEMM");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("KDDN_FORCE_SCALAR_GEMM", "1", /*overwrite=*/1);
  EXPECT_STREQ(detail::ResolveGemmImplFromEnv().isa, "scalar");

  // "0" and empty mean "no override": resolve to the host's best ISA.
  const char* best =
      detail::SelectGemmImpl(CpuFeaturesDetected(), false).isa;
  ::setenv("KDDN_FORCE_SCALAR_GEMM", "0", /*overwrite=*/1);
  EXPECT_STREQ(detail::ResolveGemmImplFromEnv().isa, best);
  ::setenv("KDDN_FORCE_SCALAR_GEMM", "", /*overwrite=*/1);
  EXPECT_STREQ(detail::ResolveGemmImplFromEnv().isa, best);

  if (saved != nullptr) {
    ::setenv("KDDN_FORCE_SCALAR_GEMM", restore.c_str(), /*overwrite=*/1);
  } else {
    ::unsetenv("KDDN_FORCE_SCALAR_GEMM");
  }
}

TEST(GemmDispatchTest, ActiveIsaIsAKnownNameAndStable) {
  // ActiveGemmImpl resolves once per process (possibly under the
  // KDDN_FORCE_SCALAR_GEMM override the forced-scalar ctest variant sets),
  // so assert membership and stability rather than a specific ISA.
  ASSERT_NE(ActiveGemmIsa(), nullptr);
  EXPECT_TRUE(IsKnownIsa(ActiveGemmIsa())) << ActiveGemmIsa();
  EXPECT_STREQ(ActiveGemmIsa(), detail::GemmIsaName());
  EXPECT_STREQ(ActiveGemmIsa(), detail::ActiveGemmImpl().isa);
}

TEST(GemmDispatchTest, KernelModeNames) {
  EXPECT_STREQ(GemmKernelName(GemmKernel::kAuto), "auto");
  EXPECT_STREQ(GemmKernelName(GemmKernel::kScalar), "scalar");
  EXPECT_STREQ(GemmKernelName(GemmKernel::kNaive), "naive");
}

TEST(GemmDispatchTest, TimingAccumulatorCountsOnlyWhenEnabled) {
  Rng rng(31);
  const Tensor a = RandomNormal({8, 24}, 0, 1, &rng);
  const Tensor b = RandomNormal({24, 8}, 0, 1, &rng);
  ResetGemmTiming();
  MatMul(a, b);  // Disabled (the default): must not count.
  EXPECT_EQ(GetGemmTiming().calls, 0u);
  SetGemmTimingEnabled(true);
  MatMul(a, b);
  MatMul(a, b);
  SetGemmTimingEnabled(false);
  const GemmTimingStats stats = GetGemmTiming();
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_GT(stats.total_ns, 0u);
  MatMul(a, b);  // Disabled again: frozen.
  EXPECT_EQ(GetGemmTiming().calls, 2u);
  ResetGemmTiming();
  EXPECT_EQ(GetGemmTiming().calls, 0u);
  EXPECT_EQ(GetGemmTiming().total_ns, 0u);
}

TEST(CpuFeaturesTest, DetectionIsCachedAndSelfConsistent) {
  const CpuFeatures& first = CpuFeaturesDetected();
  const CpuFeatures& second = CpuFeaturesDetected();
  EXPECT_EQ(&first, &second);  // One detection per process.
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(first.sse2);  // Architectural baseline on x86-64.
  // Feature implications the decode must preserve.
  if (first.avx2) {
    EXPECT_TRUE(first.avx);
  }
  if (first.fma) {
    EXPECT_TRUE(first.avx);
  }
#endif
#if defined(__aarch64__)
  EXPECT_TRUE(first.neon);  // Mandatory in AArch64.
#endif
  EXPECT_FALSE(CpuFeaturesSummary(first).empty());
}

TEST(TensorPoolTest, RecycledStorageIsReusedAndRezeroed) {
  TensorPool& pool = TensorPool::ThreadLocal();
  pool.Trim();
  Tensor t = pool.Acquire({4, 5});
  t.Fill(3.5f);  // Dirty the buffer before recycling.
  const int64_t reuses_before = pool.reuses();
  pool.Recycle(std::move(t));
  Tensor again = pool.Acquire({5, 4});  // Same element count, new shape.
  EXPECT_EQ(pool.reuses(), reuses_before + 1);
  for (int64_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.data()[i], 0.0f) << "stale bytes leaked at " << i;
  }
}

TEST(TensorPoolTest, AcquireCopyMatchesSource) {
  TensorPool& pool = TensorPool::ThreadLocal();
  Rng rng(9);
  const Tensor src = RandomNormal({3, 7}, 0, 1, &rng);
  const Tensor copy = pool.AcquireCopy(src);
  ExpectBitwiseEqual(copy, src, "AcquireCopy");
}

TEST(TensorPoolTest, BestFitPrefersSmallestSufficientBuffer) {
  TensorPool& pool = TensorPool::ThreadLocal();
  pool.Trim();
  const int64_t allocations_before = pool.allocations();
  pool.Recycle(pool.AcquireUninit({100}));
  pool.Recycle(pool.AcquireUninit({10}));
  // Wants 8 floats: both cached buffers fit, the 10-float one is the best
  // fit and must be chosen — leaving the 100-float buffer to serve the
  // 90-float ask below. A worst-fit pool would have to allocate here.
  Tensor small = pool.Acquire({8});
  Tensor big = pool.AcquireUninit({90});
  EXPECT_EQ(pool.allocations(), allocations_before + 2);  // Seeds only.
}

TEST(SparseRowsTest, TracksDeduplicatedRowsAndDenseAbsorbs) {
  ag::SparseRows tracker;
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kClean);
  tracker.MarkRows({3, 1, 3, 1, 5}, 8);
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kSparse);
  EXPECT_EQ(tracker.rows(), (std::vector<int>{3, 1, 5}));
  tracker.MarkDense();
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kDense);
  // Dense absorbs later row marks...
  tracker.MarkRows({0}, 8);
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kDense);
  // ...but keeps the earlier row list readable for in-flight captures.
  EXPECT_EQ(tracker.rows(), (std::vector<int>{3, 1, 5}));
  tracker.Clear();
  EXPECT_EQ(tracker.state(), ag::SparseRows::State::kClean);
  tracker.MarkRows({2}, 8);  // Membership bits must have been reset.
  EXPECT_EQ(tracker.rows(), (std::vector<int>{2}));
}

/// One embedding backward + Adagrad step, sparse vs dense mode, on identical
/// tables: values and gradients must end bitwise identical, and repeated ids
/// must accumulate exactly once per occurrence.
TEST(SparseAdagradTest, StepBitwiseEqualToDense) {
  SparseModeGuard guard;
  Rng rng(4242);
  const Tensor init = RandomNormal({12, 4}, 0, 0.5f, &rng);
  const std::vector<int> ids = {0, 7, 7, 3, 0};

  auto run = [&](bool sparse) {
    ag::SetSparseGradients(sparse);
    ag::NodePtr table = ag::Node::Leaf(init, true, "emb.table");
    nn::Adagrad opt(0.1f);
    for (int step = 0; step < 3; ++step) {
      ag::NodePtr e = ag::EmbeddingLookup(table, ids);
      ag::Backward(ag::MeanAll(ag::Mul(e, e)));
      if (sparse) {
        EXPECT_EQ(table->grad_rows().state(), ag::SparseRows::State::kSparse)
            << "step " << step;
        EXPECT_EQ(table->grad_rows().rows(), (std::vector<int>{0, 7, 3}));
      }
      opt.Step({table});
      EXPECT_EQ(table->grad_rows().state(), ag::SparseRows::State::kClean);
    }
    return std::make_pair(table->value(), opt.ExportState());
  };

  const auto [dense_value, dense_state] = run(false);
  const auto [sparse_value, sparse_state] = run(true);
  ExpectBitwiseEqual(sparse_value, dense_value, "table value");
  ASSERT_EQ(sparse_state.size(), dense_state.size());
  for (size_t i = 0; i < dense_state.size(); ++i) {
    EXPECT_EQ(sparse_state[i].first, dense_state[i].first);
    ExpectBitwiseEqual(sparse_state[i].second, dense_state[i].second,
                       "accumulator " + dense_state[i].first);
  }
}

/// Shared training fixture for the end-to-end goldens: sparse-vs-dense
/// equivalence and cross-kernel checkpoint resume.
class TrainingEquivalenceTest : public ::testing::Test {
 protected:
  TrainingEquivalenceTest()
      : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 120;
    config.seed = 91;
    cohort_ = synth::Cohort::Generate(config, kb_);
    data::DatasetOptions options;
    options.max_words = 48;
    options.max_concepts = 24;
    dataset_ = data::MortalityDataset::Build(cohort_, extractor_, options);
  }

  models::ModelConfig Config() const {
    models::ModelConfig config;
    config.word_vocab_size = dataset_.word_vocab().size();
    config.concept_vocab_size = dataset_.concept_vocab().size();
    config.embedding_dim = 6;
    config.num_filters = 4;
    config.seed = 17;
    return config;
  }

  std::vector<Tensor> TrainOnce(bool sparse, int num_threads) {
    models::BkDdn model(Config());
    core::TrainOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.seed = 13;
    options.num_threads = num_threads;
    options.sparse_embedding_updates = sparse;
    core::Trainer trainer(options);
    trainer.Train(&model, dataset_.train(), dataset_.validation(),
                  synth::Horizon::kInHospital);
    std::vector<Tensor> params;
    for (const ag::NodePtr& param : model.params().all()) {
      params.push_back(param->value());
    }
    return params;
  }

  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
  data::MortalityDataset dataset_;
};

/// End-to-end golden: BK-DDN trained with sparse embedding updates must
/// reach bitwise-identical weights as the dense path, at 1 and 4 threads
/// (the GradSink merge/reset paths differ per thread count).
TEST_F(TrainingEquivalenceTest, SparseMatchesDenseBitwise) {
  const std::vector<Tensor> golden = TrainOnce(/*sparse=*/false,
                                               /*num_threads=*/1);
  ASSERT_FALSE(golden.empty());
  for (const bool sparse : {false, true}) {
    for (const int threads : {1, 4}) {
      if (!sparse && threads == 1) {
        continue;  // That is the golden run itself.
      }
      const std::vector<Tensor> params = TrainOnce(sparse, threads);
      ASSERT_EQ(params.size(), golden.size());
      for (size_t i = 0; i < params.size(); ++i) {
        ASSERT_TRUE(params[i].SameShape(golden[i]));
        EXPECT_EQ(std::memcmp(params[i].data(), golden[i].data(),
                              params[i].size() * sizeof(float)),
                  0)
            << "param " << i << " differs (sparse=" << sparse
            << ", threads=" << threads << ")";
      }
    }
  }
}

/// Cross-kernel resume golden: a checkpoint written while training under the
/// scalar lane-faithful reference must resume under the dispatched SIMD
/// kernel and land on exactly the weights of a run that used the SIMD kernel
/// throughout. This is the determinism contract's payoff in production: a
/// snapshot can migrate between hosts (or builds) with different ISAs and
/// training history never forks.
TEST_F(TrainingEquivalenceTest, ScalarCheckpointResumesBitwiseUnderSimd) {
  GemmKernelGuard guard;
  const auto& train = dataset_.train();
  const auto& validation = dataset_.validation();
  const synth::Horizon horizon = synth::Horizon::kInHospital;

  core::TrainOptions options;
  options.epochs = 4;
  options.batch_size = 16;
  options.seed = 13;
  options.num_threads = 1;

  // Reference: the whole run under the dispatched kernel.
  SetGemmKernel(GemmKernel::kAuto);
  models::BkDdn straight(Config());
  core::Trainer(options).Train(&straight, train, validation, horizon);

  // Epochs 1-2 under the scalar reference, "crash" at the start of epoch 3.
  core::TrainOptions checkpointed = options;
  checkpointed.checkpoint_dir = ScratchDir("cross_kernel_resume");
  SetGemmKernel(GemmKernel::kScalar);
  {
    FaultInjector::ScopedFault kill("core.train.epoch", /*fail_on_hit=*/2);
    models::BkDdn crashed(Config());
    EXPECT_THROW(core::Trainer(checkpointed)
                     .Train(&crashed, train, validation, horizon),
                 KddnError);
  }
  ASSERT_TRUE(std::filesystem::exists(
      core::CheckpointPath(checkpointed.checkpoint_dir)));

  // Resume epochs 3-4 under the SIMD kernel.
  SetGemmKernel(GemmKernel::kAuto);
  checkpointed.resume = true;
  models::BkDdn resumed(Config());
  core::Trainer(checkpointed).Train(&resumed, train, validation, horizon);

  const auto& expected = straight.params().all();
  const auto& actual = resumed.params().all();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const Tensor& a = actual[i]->value();
    const Tensor& e = expected[i]->value();
    ASSERT_TRUE(a.SameShape(e));
    EXPECT_EQ(std::memcmp(a.data(), e.data(), a.size() * sizeof(float)), 0)
        << "parameter " << actual[i]->name()
        << " forked across the kernel switch";
  }
}

}  // namespace
}  // namespace kddn
