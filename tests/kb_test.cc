#include "kb/knowledge_base.h"

#include <set>

#include "common/check.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"

namespace kddn::kb {
namespace {

TEST(SemanticTypeTest, NamesAndClinicalSubset) {
  EXPECT_STREQ(SemanticTypeName(SemanticType::kDiseaseOrSyndrome),
               "Disease or Syndrome");
  EXPECT_TRUE(IsClinicalSemanticType(SemanticType::kSignOrSymptom));
  EXPECT_TRUE(IsClinicalSemanticType(SemanticType::kBiomedicalDevice));
  EXPECT_FALSE(IsClinicalSemanticType(SemanticType::kQualitativeConcept));
  EXPECT_FALSE(IsClinicalSemanticType(SemanticType::kTemporalConcept));
  EXPECT_FALSE(IsClinicalSemanticType(SemanticType::kIdeaOrConcept));
}

TEST(KnowledgeBaseTest, AddAndLookup) {
  KnowledgeBase kb;
  kb.Add({"C1", "Test disease", {"test disease"},
          SemanticType::kDiseaseOrSyndrome, "def"});
  ASSERT_NE(kb.FindByCui("C1"), nullptr);
  EXPECT_EQ(kb.FindByCui("C1")->preferred_name, "Test disease");
  EXPECT_EQ(kb.FindByCui("C2"), nullptr);
  EXPECT_EQ(kb.size(), 1);
}

TEST(KnowledgeBaseTest, DuplicateCuiRejected) {
  KnowledgeBase kb;
  kb.Add({"C1", "A", {"a"}, SemanticType::kFinding, ""});
  EXPECT_THROW(kb.Add({"C1", "B", {"b"}, SemanticType::kFinding, ""}),
               KddnError);
  EXPECT_THROW(kb.Add({"", "B", {"b"}, SemanticType::kFinding, ""}),
               KddnError);
}

TEST(DefaultKbTest, ContainsPaperCuis) {
  KnowledgeBase kb = KnowledgeBase::BuildDefault();
  // CUIs named in the paper's figures and tables.
  for (const char* cui :
       {"C0010200", "C0027051", "C1527391", "C0018802", "C0234438",
        "C0008031", "C0549646", "C0034063", "C0747635", "C0013404",
        "C0242184", "C0596790", "C0175730", "C0185115", "C0336630",
        "C0015252", "C0332448", "C0003873", "C0085678", "C0728940",
        "C0042963"}) {
    EXPECT_NE(kb.FindByCui(cui), nullptr) << cui;
  }
  EXPECT_GE(kb.size(), 120);
}

TEST(DefaultKbTest, CoversAllSemanticTypes) {
  KnowledgeBase kb = KnowledgeBase::BuildDefault();
  EXPECT_GE(kb.OfType(SemanticType::kDiseaseOrSyndrome).size(), 25u);
  EXPECT_GE(kb.OfType(SemanticType::kSignOrSymptom).size(), 15u);
  EXPECT_GE(kb.OfType(SemanticType::kTherapeuticProcedure).size(), 10u);
  EXPECT_GE(kb.OfType(SemanticType::kBiomedicalDevice).size(), 8u);
  EXPECT_GE(kb.OfType(SemanticType::kClinicalDrug).size(), 8u);
  EXPECT_GE(kb.OfType(SemanticType::kBodyPart).size(), 8u);
  EXPECT_GE(kb.OfType(SemanticType::kQualitativeConcept).size(), 4u);
}

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() : kb_(KnowledgeBase::BuildDefault()), extractor_(&kb_) {}
  KnowledgeBase kb_;
  ConceptExtractor extractor_;
};

TEST_F(ExtractorTest, TagsMultiWordConceptAsOne) {
  // The paper's §I motivating sentence.
  const auto mentions = extractor_.Extract(
      "there is no mediastinal vascular engorgement to suggest cardiac "
      "tamponade");
  std::set<std::string> cuis;
  for (const auto& m : mentions) {
    cuis.insert(m.cui);
  }
  EXPECT_TRUE(cuis.count("C0743298"));  // Mediastinal vascular engorgement.
  EXPECT_TRUE(cuis.count("C0039231"));  // Cardiac tamponade (one concept).
}

TEST_F(ExtractorTest, LongestMatchWins) {
  const auto mentions =
      extractor_.Extract("bilateral pleural effusion noted");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].cui, "C0747635");  // Not plain pleural effusion.
}

TEST_F(ExtractorTest, InflectedFormsMatchWithLowerScore) {
  const auto exact = extractor_.Extract("patient with cough");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].cui, "C0010200");
  EXPECT_EQ(exact[0].score, 1000.0f);

  const auto inflected = extractor_.Extract("patient coughs at night");
  ASSERT_EQ(inflected.size(), 1u);
  EXPECT_EQ(inflected[0].cui, "C0010200");
  EXPECT_EQ(inflected[0].score, 900.0f);
}

TEST_F(ExtractorTest, PositionsAreSortedAndUnfolded) {
  // Same concept at two positions -> two mentions, sorted (Fig. 6).
  const auto mentions =
      extractor_.Extract("vomiting overnight, then more vomiting today");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].cui, "C0042963");
  EXPECT_EQ(mentions[1].cui, "C0042963");
  EXPECT_LT(mentions[0].token_begin, mentions[1].token_begin);
  const auto cuis = ConceptExtractor::CuiSequence(mentions);
  ASSERT_EQ(cuis.size(), 2u);
  EXPECT_EQ(cuis[0], "C0042963");
}

TEST_F(ExtractorTest, CharOffsetsPointAtMention) {
  const std::string note = "Assessment: pulmonary edema worsening.";
  const auto mentions = extractor_.Extract(note);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(note.substr(mentions[0].char_begin,
                        mentions[0].char_end - mentions[0].char_begin),
            "pulmonary edema");
  EXPECT_EQ(mentions[0].token_length, 2);
}

TEST_F(ExtractorTest, SemanticTypeFilterDropsGeneralConcepts) {
  const std::string note = "patient stable this morning, no increased edema";
  ExtractionOptions keep_all;
  keep_all.filter_general = false;
  const auto unfiltered = extractor_.Extract(note, keep_all);
  const auto filtered = extractor_.Extract(note);
  std::set<std::string> unfiltered_cuis, filtered_cuis;
  for (const auto& m : unfiltered) unfiltered_cuis.insert(m.cui);
  for (const auto& m : filtered) filtered_cuis.insert(m.cui);
  EXPECT_TRUE(unfiltered_cuis.count("C0030705"));  // Patients (general).
  EXPECT_TRUE(unfiltered_cuis.count("C0205360"));  // Stable (general).
  EXPECT_FALSE(filtered_cuis.count("C0030705"));
  EXPECT_FALSE(filtered_cuis.count("C0205360"));
  EXPECT_TRUE(filtered_cuis.count("C0013604"));  // Edema survives.
}

TEST_F(ExtractorTest, MinScoreFilter) {
  ExtractionOptions strict;
  strict.min_score = 950.0f;
  const auto mentions = extractor_.Extract("patient coughs", strict);
  EXPECT_TRUE(mentions.empty());  // Lemma match scores 900.
}

TEST_F(ExtractorTest, EmptyAndConceptFreeText) {
  EXPECT_TRUE(extractor_.Extract("").empty());
  EXPECT_TRUE(extractor_.Extract("the quick brown fox").empty());
}

TEST_F(ExtractorTest, AliasesShareCui) {
  const auto a = extractor_.Extract("known chf exacerbation");
  const auto b = extractor_.Extract("worsening congestive heart failure");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a[0].cui, b[0].cui);
  EXPECT_EQ(a[0].cui, "C0018802");
}

TEST_F(ExtractorTest, StopwordsInsideAliasesStillMatch) {
  // "shortness of breath" contains the stop word "of"; extraction runs on raw
  // text so it must still map to Dyspnea (paper §VII-B2 rationale).
  const auto mentions = extractor_.Extract("complains of shortness of breath");
  ASSERT_FALSE(mentions.empty());
  EXPECT_EQ(mentions[0].cui, "C0013404");
}

}  // namespace
}  // namespace kddn::kb
