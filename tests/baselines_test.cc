#include "baselines/lda.h"

#include <cmath>

#include "baselines/logreg.h"
#include "baselines/svm.h"
#include "common/check.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace kddn::baselines {
namespace {

/// Two-topic corpus: docs draw words from either {0..4} or {5..9}.
std::vector<std::vector<int>> TwoTopicCorpus(int docs_per_topic, Rng* rng) {
  std::vector<std::vector<int>> docs;
  for (int t = 0; t < 2; ++t) {
    for (int d = 0; d < docs_per_topic; ++d) {
      std::vector<int> doc;
      const int len = 20 + rng->UniformInt(10);
      for (int w = 0; w < len; ++w) {
        doc.push_back(t * 5 + rng->UniformInt(5));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

TEST(LdaTest, RecoversTwoTopicStructure) {
  Rng rng(1);
  LdaOptions options;
  options.num_topics = 2;
  options.train_iterations = 80;
  Lda lda(options);
  const auto docs = TwoTopicCorpus(30, &rng);
  lda.Fit(docs, 10);

  // Documents from the same block should have more similar topic mixes than
  // documents from different blocks.
  auto theta = [&lda](int i) { return lda.TrainDocTopics(i); };
  double within = 0.0, across = 0.0;
  int within_n = 0, across_n = 0;
  for (int i = 0; i < 60; i += 7) {
    for (int j = i + 1; j < 60; j += 7) {
      const auto a = theta(i), b = theta(j);
      const double dist =
          std::fabs(a[0] - b[0]) + std::fabs(a[1] - b[1]);
      if ((i < 30) == (j < 30)) {
        within += dist;
        ++within_n;
      } else {
        across += dist;
        ++across_n;
      }
    }
  }
  ASSERT_GT(within_n, 0);
  ASSERT_GT(across_n, 0);
  EXPECT_LT(within / within_n, across / across_n);
}

TEST(LdaTest, TopicsSumToOne) {
  Rng rng(2);
  Lda lda;
  lda.Fit(TwoTopicCorpus(10, &rng), 10);
  const auto theta = lda.TrainDocTopics(0);
  double total = 0.0;
  for (float p : theta) {
    EXPECT_GE(p, 0.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
  EXPECT_EQ(static_cast<int>(theta.size()), lda.num_topics());
}

TEST(LdaTest, InferenceMatchesTrainingStructure) {
  Rng rng(3);
  LdaOptions options;
  options.num_topics = 2;
  options.train_iterations = 80;
  Lda lda(options);
  lda.Fit(TwoTopicCorpus(30, &rng), 10);
  // A fresh doc of words 0..4 should land near training docs 0..29's mix.
  std::vector<int> doc(25, 2);
  const auto inferred = lda.InferTopics(doc);
  const auto train0 = lda.TrainDocTopics(0);
  const int dominant_inferred = inferred[0] > inferred[1] ? 0 : 1;
  const int dominant_train = train0[0] > train0[1] ? 0 : 1;
  EXPECT_EQ(dominant_inferred, dominant_train);
  EXPECT_GT(inferred[dominant_inferred], 0.8f);
}

TEST(LdaTest, TopicWordProbabilitiesNormalised) {
  Rng rng(4);
  LdaOptions options;
  options.num_topics = 3;
  Lda lda(options);
  lda.Fit(TwoTopicCorpus(10, &rng), 10);
  for (int k = 0; k < 3; ++k) {
    double total = 0.0;
    for (int w = 0; w < 10; ++w) {
      total += lda.TopicWordProbability(k, w);
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(LdaTest, RequiresFitAndValidatesInput) {
  Lda lda;
  EXPECT_THROW(lda.TrainDocTopics(0), KddnError);
  EXPECT_THROW(lda.InferTopics({1, 2}), KddnError);
  EXPECT_THROW(lda.Fit({{0, 11}}, 10), KddnError);  // Word out of range.
  LdaOptions bad;
  bad.num_topics = 1;
  EXPECT_THROW(Lda{bad}, KddnError);
}

/// Linearly separable blobs in 2-D.
void LinearBlobs(int n, Rng* rng, std::vector<std::vector<float>>* x,
                 std::vector<int>* y) {
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    const float cx = label == 1 ? 2.0f : -2.0f;
    x->push_back({static_cast<float>(rng->Normal(cx, 0.7)),
                  static_cast<float>(rng->Normal(cx, 0.7))});
    y->push_back(label);
  }
}

TEST(KernelSvmTest, SeparatesLinearBlobs) {
  Rng rng(5);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  LinearBlobs(120, &rng, &x, &y);
  KernelSvm svm;
  svm.Fit(x, y);
  std::vector<std::vector<float>> xt;
  std::vector<int> yt;
  LinearBlobs(80, &rng, &xt, &yt);
  std::vector<float> scores;
  for (const auto& row : xt) {
    scores.push_back(svm.Decision(row));
  }
  EXPECT_GT(eval::RocAuc(scores, yt), 0.95);
  EXPECT_GT(svm.NumSupportVectors(), 0);
  EXPECT_LE(svm.NumSupportVectors(), 120);
}

TEST(KernelSvmTest, PolynomialKernelSolvesXor) {
  // XOR is not linearly separable; the poly kernel must handle it.
  Rng rng(6);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const float a = static_cast<float>(rng.Normal(0, 1));
    const float b = static_cast<float>(rng.Normal(0, 1));
    x.push_back({a, b});
    y.push_back(a * b > 0 ? 1 : 0);
  }
  KernelSvmOptions options;
  options.kernel = KernelType::kPolynomial;
  options.degree = 2;
  options.epochs = 120;
  KernelSvm svm(options);
  svm.Fit(x, y);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    const float a = static_cast<float>(rng.Normal(0, 1));
    const float b = static_cast<float>(rng.Normal(0, 1));
    scores.push_back(svm.Decision({a, b}));
    labels.push_back(a * b > 0 ? 1 : 0);
  }
  EXPECT_GT(eval::RocAuc(scores, labels), 0.9);
}

TEST(KernelSvmTest, RbfKernelWorks) {
  Rng rng(7);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  LinearBlobs(100, &rng, &x, &y);
  KernelSvmOptions options;
  options.kernel = KernelType::kRbf;
  KernelSvm svm(options);
  svm.Fit(x, y);
  std::vector<float> scores;
  for (const auto& row : x) {
    scores.push_back(svm.Decision(row));
  }
  EXPECT_GT(eval::RocAuc(scores, y), 0.95);
}

TEST(KernelSvmTest, ValidatesInput) {
  KernelSvm svm;
  EXPECT_THROW(svm.Decision({1.0f}), KddnError);  // Not fitted.
  EXPECT_THROW(svm.Fit({}, {}), KddnError);
  EXPECT_THROW(svm.Fit({{1.0f}}, {1}), KddnError);           // One class.
  EXPECT_THROW(svm.Fit({{1.0f}, {2.0f}}, {1, 2}), KddnError);  // Bad label.
  EXPECT_THROW(svm.Fit({{1.0f}, {2.0f, 3.0f}}, {0, 1}), KddnError);  // Ragged.
}

TEST(LinearSvmTest, SeparatesBlobsAtBowScale) {
  // 200-dimensional sparse-ish features.
  Rng rng(8);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    std::vector<float> row(200, 0.0f);
    for (int k = 0; k < 20; ++k) {
      const int slot = rng.UniformInt(100) + (label == 1 ? 100 : 0);
      row[slot] += 1.0f;
    }
    x.push_back(std::move(row));
    y.push_back(label);
  }
  LinearSvm svm;
  svm.Fit(x, y);
  std::vector<float> scores;
  for (const auto& row : x) {
    scores.push_back(svm.Decision(row));
  }
  EXPECT_GT(eval::RocAuc(scores, y), 0.95);
}

TEST(LinearSvmTest, ValidatesInput) {
  LinearSvm svm;
  EXPECT_THROW(svm.Decision({1.0f}), KddnError);
  LinearSvmOptions bad;
  bad.lambda = 0.0;
  EXPECT_THROW(LinearSvm{bad}, KddnError);
}

TEST(LogisticRegressionTest, SeparableDataAndProbabilities) {
  Rng rng(9);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  LinearBlobs(200, &rng, &x, &y);
  LogisticRegression lr;
  lr.Fit(x, y);
  std::vector<float> scores;
  for (const auto& row : x) {
    const float p = lr.PredictProbability(row);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    scores.push_back(p);
  }
  EXPECT_GT(eval::RocAuc(scores, y), 0.95);
  // Far-away points should be confidently classified.
  EXPECT_GT(lr.PredictProbability({5.0f, 5.0f}), 0.9f);
  EXPECT_LT(lr.PredictProbability({-5.0f, -5.0f}), 0.1f);
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  Rng rng(10);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  LinearBlobs(100, &rng, &x, &y);
  LogisticRegressionOptions weak, strong;
  weak.l2 = 1e-6;
  strong.l2 = 1.0;
  LogisticRegression lr_weak(weak), lr_strong(strong);
  lr_weak.Fit(x, y);
  lr_strong.Fit(x, y);
  auto norm = [](const std::vector<double>& w) {
    double total = 0.0;
    for (double v : w) {
      total += v * v;
    }
    return total;
  };
  EXPECT_LT(norm(lr_strong.weights()), norm(lr_weak.weights()));
}

TEST(LogisticRegressionTest, ValidatesInput) {
  LogisticRegression lr;
  EXPECT_THROW(lr.PredictProbability({1.0f}), KddnError);
  EXPECT_THROW(lr.Fit({}, {}), KddnError);
  EXPECT_THROW(lr.Fit({{1.0f}}, {2}), KddnError);
}

}  // namespace
}  // namespace kddn::baselines
