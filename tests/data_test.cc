#include "data/dataset.h"

#include <set>

#include "common/check.h"
#include "gtest/gtest.h"

namespace kddn::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest()
      : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 600;
    config.seed = 11;
    config.concept_free_fraction = 0.05;
    cohort_ = synth::Cohort::Generate(config, kb_);
  }
  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
};

TEST_F(DatasetTest, SplitProportionsMatchPaper) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  const int total = dataset.num_patients();
  EXPECT_EQ(total + dataset.excluded_zero_concept(),
            static_cast<int>(cohort_.patients().size()));
  const double test_fraction =
      static_cast<double>(dataset.test().size()) / total;
  EXPECT_NEAR(test_fraction, 0.3, 0.02);
  const double validation_of_train =
      static_cast<double>(dataset.validation().size()) /
      (dataset.train().size() + dataset.validation().size());
  EXPECT_NEAR(validation_of_train, 0.1, 0.02);
}

TEST_F(DatasetTest, ZeroConceptPatientsAreExcluded) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  EXPECT_GT(dataset.excluded_zero_concept(), 0);
  for (const std::vector<Example>* split :
       {&dataset.train(), &dataset.validation(), &dataset.test()}) {
    for (const Example& example : *split) {
      EXPECT_FALSE(example.concept_ids.empty());
      EXPECT_FALSE(example.word_ids.empty());
    }
  }
}

TEST_F(DatasetTest, SplitsArePatientDisjoint) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  std::set<int> seen;
  for (const std::vector<Example>* split :
       {&dataset.train(), &dataset.validation(), &dataset.test()}) {
    for (const Example& example : *split) {
      EXPECT_TRUE(seen.insert(example.patient_id).second)
          << "patient " << example.patient_id << " in two splits";
    }
  }
}

TEST_F(DatasetTest, TruncationRespectsLimits) {
  DatasetOptions options;
  options.max_words = 32;
  options.max_concepts = 8;
  MortalityDataset dataset =
      MortalityDataset::Build(cohort_, extractor_, options);
  for (const Example& example : dataset.train()) {
    EXPECT_LE(example.word_ids.size(), 32u);
    EXPECT_LE(example.concept_ids.size(), 8u);
  }
}

TEST_F(DatasetTest, LabelsAreNested) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  for (const Example& example : dataset.train()) {
    if (example.Label(synth::Horizon::kInHospital)) {
      EXPECT_TRUE(example.Label(synth::Horizon::kWithin30Days));
      EXPECT_TRUE(example.Label(synth::Horizon::kWithinYear));
    }
    if (example.Label(synth::Horizon::kWithin30Days)) {
      EXPECT_TRUE(example.Label(synth::Horizon::kWithinYear));
    }
  }
  EXPECT_GT(dataset.CountPositive(synth::Horizon::kWithinYear),
            dataset.CountPositive(synth::Horizon::kInHospital));
}

TEST_F(DatasetTest, VocabulariesAreReasonable) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  // Stop words must not survive preprocessing.
  EXPECT_FALSE(dataset.word_vocab().Contains("the"));
  EXPECT_FALSE(dataset.word_vocab().Contains("is"));
  // Clinical vocabulary and concept CUIs must.
  EXPECT_TRUE(dataset.word_vocab().Contains("effusion") ||
              dataset.word_vocab().Contains("pneumonia"));
  EXPECT_GT(dataset.concept_vocab().size(), 20);
  EXPECT_LT(dataset.concept_vocab().size(), 200);
}

TEST_F(DatasetTest, DocumentStatisticsShapeMatchesTables) {
  MortalityDataset dataset = MortalityDataset::Build(cohort_, extractor_);
  const MomentStats words = dataset.WordStats();
  const MomentStats concepts = dataset.ConceptStats();
  // Tables III/IV shape: words per patient >> concepts per patient, and both
  // have nontrivial spread.
  EXPECT_GT(words.mean, concepts.mean * 1.5);
  EXPECT_GT(words.stddev, 0.0);
  EXPECT_GT(concepts.stddev, 0.0);
  EXPECT_GT(concepts.mean, 5.0);
}

TEST_F(DatasetTest, SplitSeedChangesAssignmentNotSize) {
  DatasetOptions a, b;
  a.split_seed = 1;
  b.split_seed = 2;
  MortalityDataset da = MortalityDataset::Build(cohort_, extractor_, a);
  MortalityDataset db = MortalityDataset::Build(cohort_, extractor_, b);
  EXPECT_EQ(da.test().size(), db.test().size());
  std::set<int> ta, tb;
  for (const Example& e : da.test()) ta.insert(e.patient_id);
  for (const Example& e : db.test()) tb.insert(e.patient_id);
  EXPECT_NE(ta, tb);
}

TEST_F(DatasetTest, InvalidOptionsRejected) {
  DatasetOptions bad;
  bad.test_fraction = 0.0;
  EXPECT_THROW(MortalityDataset::Build(cohort_, extractor_, bad), KddnError);
  bad = DatasetOptions();
  bad.max_words = 0;
  EXPECT_THROW(MortalityDataset::Build(cohort_, extractor_, bad), KddnError);
}

TEST(MomentsTest, KnownValues) {
  const MomentStats stats = ComputeMoments({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(stats.mean, 5.0, 1e-9);
  EXPECT_NEAR(stats.stddev, 2.0, 1e-9);
  const MomentStats empty = ComputeMoments({});
  EXPECT_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace kddn::data
