#include "core/trainer.h"

#include "common/check.h"
#include "core/attention_mining.h"
#include "core/experiment.h"
#include "gtest/gtest.h"
#include "models/ak_ddn.h"
#include "models/text_cnn.h"

namespace kddn::core {
namespace {

/// Small end-to-end fixture: synthetic NURSING cohort -> dataset.
class CoreTest : public ::testing::Test {
 protected:
  CoreTest() : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 340;
    config.seed = 21;
    cohort_ = synth::Cohort::Generate(config, kb_);
    data::DatasetOptions options;
    options.max_words = 96;
    options.max_concepts = 48;
    dataset_ = data::MortalityDataset::Build(cohort_, extractor_, options);
  }

  models::ModelConfig SmallModelConfig() const {
    models::ModelConfig config;
    config.word_vocab_size = dataset_.word_vocab().size();
    config.concept_vocab_size = dataset_.concept_vocab().size();
    config.embedding_dim = 8;
    config.num_filters = 8;
    config.seed = 5;
    return config;
  }

  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
  data::MortalityDataset dataset_;
};

TEST_F(CoreTest, TrainerImprovesOverChance) {
  models::TextCnn model(SmallModelConfig());
  TrainOptions options;
  options.epochs = 6;
  options.batch_size = 16;
  Trainer trainer(options);
  eval::CurveRecorder curve =
      trainer.Train(&model, dataset_.train(), dataset_.validation(),
                    synth::Horizon::kWithinYear);
  ASSERT_EQ(curve.points().size(), 6u);
  const double test_auc = Trainer::EvaluateAuc(&model, dataset_.test(),
                                               synth::Horizon::kWithinYear);
  EXPECT_GT(test_auc, 0.62) << "Text CNN failed to learn the planted signal";
}

TEST_F(CoreTest, TrainingLossDecreases) {
  models::TextCnn model(SmallModelConfig());
  TrainOptions options;
  options.epochs = 5;
  options.batch_size = 16;
  Trainer trainer(options);
  eval::CurveRecorder curve =
      trainer.Train(&model, dataset_.train(), dataset_.validation(),
                    synth::Horizon::kWithinYear);
  const auto& points = curve.points();
  EXPECT_LT(points.back().train_loss, points.front().train_loss);
}

TEST_F(CoreTest, ScoresAndLabelsAlign) {
  models::TextCnn model(SmallModelConfig());
  const auto scores = Trainer::Scores(&model, dataset_.test());
  const auto labels =
      Trainer::Labels(dataset_.test(), synth::Horizon::kInHospital);
  EXPECT_EQ(scores.size(), dataset_.test().size());
  EXPECT_EQ(labels.size(), dataset_.test().size());
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST_F(CoreTest, EvaluateAucHandlesDegenerateSplits) {
  models::TextCnn model(SmallModelConfig());
  EXPECT_EQ(Trainer::EvaluateAuc(&model, {}, synth::Horizon::kInHospital),
            0.5);
  // Single-class split.
  std::vector<data::Example> negatives;
  for (const data::Example& example : dataset_.test()) {
    if (!example.Label(synth::Horizon::kInHospital)) {
      negatives.push_back(example);
    }
  }
  EXPECT_EQ(
      Trainer::EvaluateAuc(&model, negatives, synth::Horizon::kInHospital),
      0.5);
}

TEST_F(CoreTest, InvalidTrainOptionsRejected) {
  TrainOptions bad;
  bad.epochs = 0;
  EXPECT_THROW(Trainer{bad}, KddnError);
}

TEST_F(CoreTest, AttentionMiningProducesRankedPairs) {
  models::AkDdn model(SmallModelConfig());
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 16;
  Trainer trainer(options);
  trainer.Train(&model, dataset_.train(), dataset_.validation(),
                synth::Horizon::kInHospital);

  const data::Example& example = dataset_.test().front();
  const auto word_pairs =
      MineWordBasedPairs(&model, example, dataset_.word_vocab(),
                         dataset_.concept_vocab(), kb_, 10);
  const auto concept_pairs =
      MineConceptBasedPairs(&model, example, dataset_.word_vocab(),
                            dataset_.concept_vocab(), kb_, 10);
  ASSERT_FALSE(word_pairs.empty());
  ASSERT_FALSE(concept_pairs.empty());
  for (size_t i = 1; i < word_pairs.size(); ++i) {
    EXPECT_GE(word_pairs[i - 1].weight, word_pairs[i].weight);
  }
  for (const auto& pair : word_pairs) {
    EXPECT_FALSE(pair.cui.empty());
    EXPECT_FALSE(pair.word.empty());
    EXPECT_FALSE(pair.concept_name.empty()) << pair.cui;
    EXPECT_GE(pair.weight, 0.0f);
    EXPECT_LE(pair.weight, 1.0f);
  }
  const std::string table = FormatPairsTable("test", word_pairs);
  EXPECT_NE(table.find(word_pairs[0].cui), std::string::npos);
}

TEST_F(CoreTest, SelectCaseRespectsLabelAndCorrectness) {
  models::AkDdn model(SmallModelConfig());
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;
  Trainer trainer(options);
  trainer.Train(&model, dataset_.train(), dataset_.validation(),
                synth::Horizon::kWithinYear);
  const data::Example* positive = SelectCase(
      &model, dataset_.test(), synth::Horizon::kWithinYear, true);
  const data::Example* negative = SelectCase(
      &model, dataset_.test(), synth::Horizon::kWithinYear, false);
  if (positive != nullptr) {
    EXPECT_TRUE(positive->Label(synth::Horizon::kWithinYear));
    EXPECT_GE(model.PredictPositiveProbability(*positive), 0.5f);
  }
  ASSERT_NE(negative, nullptr);
  EXPECT_FALSE(negative->Label(synth::Horizon::kWithinYear));
  EXPECT_LT(model.PredictPositiveProbability(*negative), 0.5f);
}

TEST_F(CoreTest, RunEvaluationSubset) {
  ExperimentOptions options;
  options.train.epochs = 2;
  options.train.batch_size = 16;
  options.embedding_dim = 8;
  options.num_filters = 8;
  options.lda.num_topics = 10;
  options.lda.train_iterations = 30;
  options.lda.infer_iterations = 10;
  options.methods = {"LDA based word LR", "Text CNN"};
  const auto results = RunEvaluation(dataset_, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "LDA based word LR");
  EXPECT_EQ(results[1].name, "Text CNN");
  for (const MethodResult& result : results) {
    for (double auc : result.auc) {
      EXPECT_GT(auc, 0.3) << result.name;
      EXPECT_LE(auc, 1.0) << result.name;
    }
  }
  const std::string table = FormatResultsTable("Table test", results);
  EXPECT_NE(table.find("Text CNN"), std::string::npos);
  EXPECT_NE(table.find("t = 0"), std::string::npos);
}

TEST_F(CoreTest, TrainerRestoresBestValidationEpoch) {
  // After training, the model must be at the epoch with the highest
  // validation AUC, not the final epoch (paper §VII-C model selection).
  models::TextCnn model(SmallModelConfig());
  TrainOptions options;
  options.epochs = 6;
  options.batch_size = 16;
  Trainer trainer(options);
  eval::CurveRecorder curve =
      trainer.Train(&model, dataset_.train(), dataset_.validation(),
                    synth::Horizon::kWithinYear);
  const double restored_auc = Trainer::EvaluateAuc(
      &model, dataset_.validation(), synth::Horizon::kWithinYear);
  EXPECT_NEAR(restored_auc, curve.BestValidationAuc(), 1e-9);
}

TEST_F(CoreTest, AllMethodNamesMatchesPaperRowCount) {
  EXPECT_EQ(AllMethodNames().size(), 11u);  // Tables V/VI have 11 rows.
  for (const std::string& name :
       {"Text CNN", "Concept CNN", "H CNN", "DKGAM", "BK-DDN", "AK-DDN"}) {
    models::ModelConfig config;
    config.word_vocab_size = 10;
    config.concept_vocab_size = 10;
    config.embedding_dim = 4;
    config.num_filters = 2;
    EXPECT_NE(MakeDeepModel(name, config), nullptr) << name;
  }
  models::ModelConfig config;
  config.word_vocab_size = 10;
  config.concept_vocab_size = 10;
  EXPECT_THROW(MakeDeepModel("No Such Model", config), KddnError);
}

}  // namespace
}  // namespace kddn::core

#include <sstream>

#include <cstdio>
#include <fstream>
#include "core/attention_html.h"

namespace kddn::core {
namespace {

TEST(EscapeHtmlTest, EscapesEntities) {
  EXPECT_EQ(EscapeHtml("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(EscapeHtml("plain"), "plain");
}

TEST_F(CoreTest, AttentionHtmlExport) {
  models::AkDdn model(SmallModelConfig());
  const data::Example& example = dataset_.test().front();
  std::ostringstream out;
  WriteAttentionHtml(&model, example, dataset_.word_vocab(),
                     dataset_.concept_vocab(), kb_, out);
  const std::string html = out.str();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("patient " + std::to_string(example.patient_id)),
            std::string::npos);
  // Every word and concept of the example appears.
  EXPECT_NE(html.find(dataset_.word_vocab().TokenOf(example.word_ids[0])),
            std::string::npos);
  EXPECT_NE(
      html.find(dataset_.concept_vocab().TokenOf(example.concept_ids[0])),
      std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Well-formed-ish: as many <tr> as </tr>.
  size_t open = 0, close = 0;
  for (size_t pos = html.find("<tr>"); pos != std::string::npos;
       pos = html.find("<tr>", pos + 1)) {
    ++open;
  }
  for (size_t pos = html.find("</tr>"); pos != std::string::npos;
       pos = html.find("</tr>", pos + 1)) {
    ++close;
  }
  EXPECT_EQ(open, close);
  EXPECT_GT(open, 2u);
}

TEST_F(CoreTest, AttentionHtmlFileWrapper) {
  models::AkDdn model(SmallModelConfig());
  const std::string path = ::testing::TempDir() + "/attention.html";
  WriteAttentionHtmlFile(&model, dataset_.test().front(),
                         dataset_.word_vocab(), dataset_.concept_vocab(),
                         kb_, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<!DOCTYPE html>"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kddn::core
