#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "gtest/gtest.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "tensor/tensor_ops.h"
#include "testing/gradient_check.h"

namespace kddn::nn {
namespace {

using ::kddn::testing::ExpectGradientsMatchFiniteDifference;

TEST(ParameterSetTest, CreateAndLookup) {
  ParameterSet params;
  Rng rng(1);
  ag::NodePtr w = params.Create("w", Tensor({2, 3}));
  ag::NodePtr b = params.Create("b", Tensor({3}));
  EXPECT_EQ(params.all().size(), 2u);
  EXPECT_EQ(params.Get("w").get(), w.get());
  EXPECT_EQ(params.Get("b").get(), b.get());
  EXPECT_EQ(params.TotalWeights(), 9);
  EXPECT_THROW(params.Get("missing"), KddnError);
  EXPECT_THROW(params.Create("w", Tensor({1})), KddnError);
}

TEST(ParameterSetTest, ZeroGrads) {
  ParameterSet params;
  ag::NodePtr w = params.Create("w", Tensor::Full({2}, 1.0f));
  ag::Backward(ag::SumAll(w));
  EXPECT_EQ(w->grad()[0], 1.0f);
  params.ZeroGrads();
  EXPECT_EQ(w->grad()[0], 0.0f);
}

TEST(InitializerTest, XavierBoundsAndNormalSpread) {
  Rng rng(2);
  Tensor x = XavierUniform({50, 50}, 50, 50, &rng);
  const float limit = std::sqrt(6.0f / 100.0f);
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::fabs(x[i]), limit);
  }
  Tensor n = NormalInit({100, 100}, 0.1f, &rng);
  EXPECT_NEAR(Mean(n), 0.0f, 0.01f);
}

TEST(EmbeddingTest, LookupShapeAndRows) {
  ParameterSet params;
  Rng rng(3);
  Embedding emb(&params, "emb", 10, 4, &rng);
  ag::NodePtr out = emb.Forward({1, 3, 1});
  ASSERT_EQ(out->value().dim(0), 3);
  ASSERT_EQ(out->value().dim(1), 4);
  // Repeated id returns identical rows.
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(out->value().at(0, j), out->value().at(2, j));
    EXPECT_EQ(out->value().at(0, j), emb.table()->value().at(1, j));
  }
}

TEST(DenseTest, Rank1AndRank2Agree) {
  ParameterSet params;
  Rng rng(4);
  Dense dense(&params, "fc", 3, 2, &rng);
  Tensor x = RandomNormal({3}, 0, 1, &rng);
  ag::NodePtr v = ag::Node::Leaf(x, false, "x");
  ag::NodePtr m = ag::Node::Leaf(x.Reshape({1, 3}), false, "xm");
  ag::NodePtr out_v = dense.Forward(v);
  ag::NodePtr out_m = dense.Forward(m);
  ASSERT_EQ(out_v->value().rank(), 1);
  ASSERT_EQ(out_m->value().rank(), 2);
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(out_v->value().at(j), out_m->value().at(0, j), 1e-6f);
  }
}

TEST(DenseTest, GradCheck) {
  ParameterSet params;
  Rng rng(5);
  Dense dense(&params, "fc", 4, 3, &rng);
  ag::NodePtr x =
      ag::Node::Leaf(RandomNormal({5, 4}, 0, 1, &rng), true, "x");
  std::vector<ag::NodePtr> leaves = params.all();
  leaves.push_back(x);
  ExpectGradientsMatchFiniteDifference(
      [&] {
        ag::NodePtr y = dense.Forward(x);
        return ag::MeanAll(ag::Mul(y, y));
      },
      leaves);
}

TEST(DenseTest, WidthMismatchThrows) {
  ParameterSet params;
  Rng rng(6);
  Dense dense(&params, "fc", 4, 2, &rng);
  ag::NodePtr bad = ag::Node::Leaf(Tensor({5, 3}), false, "bad");
  EXPECT_THROW(dense.Forward(bad), KddnError);
}

TEST(Conv1dBankTest, OutputDimAndShortInputPadding) {
  ParameterSet params;
  Rng rng(7);
  Conv1dBank conv(&params, "conv", 6, 5, {1, 2, 3}, &rng);
  EXPECT_EQ(conv.output_dim(), 15);
  // A single-token document must still work (paper notes vary in length).
  ag::NodePtr x = ag::Node::Leaf(RandomNormal({1, 6}, 0, 1, &rng), false, "x");
  ag::NodePtr feats = conv.Forward(x);
  ASSERT_EQ(feats->value().rank(), 1);
  EXPECT_EQ(feats->value().dim(0), 15);
}

TEST(Conv1dBankTest, GradCheckThroughWholeBlock) {
  ParameterSet params;
  Rng rng(8);
  Conv1dBank conv(&params, "conv", 3, 2, {1, 2}, &rng);
  ag::NodePtr x =
      ag::Node::Leaf(RandomNormal({5, 3}, 0, 1, &rng), true, "x");
  std::vector<ag::NodePtr> leaves = params.all();
  leaves.push_back(x);
  ExpectGradientsMatchFiniteDifference(
      [&] {
        ag::NodePtr y = conv.Forward(x);
        return ag::MeanAll(ag::Mul(y, y));
      },
      leaves, 1e-2f, 4e-2f);
}

TEST(AttiTest, WeightsRowsSumToOne) {
  Rng rng(9);
  ag::NodePtr q = ag::Node::Leaf(RandomNormal({4, 5}, 0, 1, &rng), false, "q");
  ag::NodePtr kv = ag::Node::Leaf(RandomNormal({7, 5}, 0, 1, &rng), false,
                                  "kv");
  AttiResult atti = Atti(q, kv);
  ASSERT_EQ(atti.weights->value().dim(0), 4);
  ASSERT_EQ(atti.weights->value().dim(1), 7);
  ASSERT_EQ(atti.output->value().dim(0), 4);
  ASSERT_EQ(atti.output->value().dim(1), 5);
  for (int i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 7; ++j) {
      total += atti.weights->value().at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(AttiTest, OutputRowsAreConvexCombinations) {
  // With a single key row, every output row equals that key row.
  Rng rng(10);
  ag::NodePtr q = ag::Node::Leaf(RandomNormal({3, 4}, 0, 1, &rng), false, "q");
  Tensor key = RandomNormal({1, 4}, 0, 1, &rng);
  ag::NodePtr kv = ag::Node::Leaf(key, false, "kv");
  AttiResult atti = Atti(q, kv);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(atti.output->value().at(i, j), key.at(0, j), 1e-5f);
    }
  }
}

TEST(AttiTest, DimMismatchThrows) {
  ag::NodePtr q = ag::Node::Leaf(Tensor({3, 4}), false, "q");
  ag::NodePtr kv = ag::Node::Leaf(Tensor({5, 6}), false, "kv");
  EXPECT_THROW(Atti(q, kv), KddnError);
}

TEST(AdagradTest, ConvergesOnQuadratic) {
  // Minimise f(w) = ||w - target||^2 with Adagrad.
  ParameterSet params;
  ag::NodePtr w = params.Create("w", Tensor::Full({3}, 5.0f));
  ag::NodePtr target =
      ag::Node::Leaf(Tensor::FromData({3}, {1, -2, 0.5f}), false, "t");
  Adagrad opt(0.5f);
  for (int step = 0; step < 400; ++step) {
    ag::NodePtr diff = ag::Sub(w, target);
    ag::Backward(ag::SumAll(ag::Mul(diff, diff)));
    opt.Step(params.all());
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(w->value()[i], target->value()[i], 0.05f);
  }
}

TEST(AdagradTest, StepZeroesGradients) {
  ParameterSet params;
  ag::NodePtr w = params.Create("w", Tensor::Full({2}, 1.0f));
  ag::Backward(ag::SumAll(w));
  Adagrad opt(0.1f);
  opt.Step(params.all());
  EXPECT_EQ(w->grad()[0], 0.0f);
}

TEST(AdagradTest, EffectiveRateShrinksWithAccumulation) {
  ParameterSet params;
  ag::NodePtr w = params.Create("w", Tensor::Full({1}, 0.0f));
  Adagrad opt(1.0f);
  // Constant gradient of 1: first step ≈ -1, second ≈ -1/sqrt(2).
  ag::Backward(ag::SumAll(w));
  opt.Step(params.all());
  const float after_first = w->value()[0];
  EXPECT_NEAR(after_first, -1.0f, 1e-3f);
  ag::Backward(ag::SumAll(w));
  opt.Step(params.all());
  EXPECT_NEAR(w->value()[0] - after_first, -1.0f / std::sqrt(2.0f), 1e-3f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  ParameterSet params;
  ag::NodePtr w = params.Create("w", Tensor::Full({1}, 10.0f));
  Sgd opt(0.1f, /*weight_decay=*/1.0f);
  // Zero loss gradient: only decay acts.
  w->ZeroGrad();
  opt.Step(params.all());
  EXPECT_NEAR(w->value()[0], 9.0f, 1e-4f);
}

TEST(OptimizerTest, InvalidHyperparametersThrow) {
  EXPECT_THROW(Adagrad(0.0f), KddnError);
  EXPECT_THROW(Adagrad(-1.0f), KddnError);
  EXPECT_THROW(Sgd(0.0f), KddnError);
  EXPECT_THROW(Sgd(0.1f, -0.5f), KddnError);
}

}  // namespace
}  // namespace kddn::nn
