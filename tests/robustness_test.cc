// Robustness suite: crash-safe training (checkpoint/resume bitwise equal to
// the uninterrupted run, atomic checkpoint writes surviving injected
// mid-write crashes), deterministic fault injection, loader error paths with
// line-number diagnostics, and overload-safe serving (queue-full shedding,
// per-request deadlines, graceful degradation). Labelled `robustness` and
// `sanitize` — the whole suite runs under TSan.
#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/fault_injector.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/kb_io.h"
#include "models/bk_ddn.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "serve/stats.h"
#include "synth/cohort.h"
#include "synth/corpus_io.h"
#include "text/vocabulary.h"

namespace kddn {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: one tiny cohort + dataset and a model config sized to it.
// Models are constructed fresh per test (training mutates them); identical
// configs give identical initial weights.
// ---------------------------------------------------------------------------
struct RobustWorld {
  kb::KnowledgeBase kb;
  std::unique_ptr<kb::ConceptExtractor> extractor;
  data::DatasetOptions data_options;
  data::MortalityDataset dataset;
  models::ModelConfig model_config;
};

RobustWorld& World() {
  static RobustWorld* world = [] {
    auto* w = new RobustWorld();
    w->kb = kb::KnowledgeBase::BuildDefault();
    w->extractor = std::make_unique<kb::ConceptExtractor>(&w->kb);
    synth::CohortConfig config;
    config.num_patients = 120;
    config.seed = 19;
    const synth::Cohort cohort = synth::Cohort::Generate(config, w->kb);
    w->data_options.max_words = 64;
    w->data_options.max_concepts = 32;
    w->dataset =
        data::MortalityDataset::Build(cohort, *w->extractor, w->data_options);
    w->model_config.word_vocab_size = w->dataset.word_vocab().size();
    w->model_config.concept_vocab_size = w->dataset.concept_vocab().size();
    w->model_config.embedding_dim = 6;
    w->model_config.num_filters = 4;
    w->model_config.seed = 9;
    return w;
  }();
  return *world;
}

std::unique_ptr<models::BkDdn> MakeModel() {
  return std::make_unique<models::BkDdn>(World().model_config);
}

/// Small standalone model for tests that don't need the dataset fixture.
models::ModelConfig TinyConfig(uint64_t seed = 13) {
  models::ModelConfig config;
  config.word_vocab_size = 20;
  config.concept_vocab_size = 10;
  config.embedding_dim = 4;
  config.num_filters = 3;
  config.seed = seed;
  return config;
}

data::Example TinyExample(int offset = 0) {
  data::Example example;
  example.word_ids = {1 + offset % 3, 2, 5};
  example.concept_ids = {1, 2};
  return example;
}

void ExpectSameParams(const nn::ParameterSet& actual,
                      const nn::ParameterSet& expected) {
  ASSERT_EQ(actual.all().size(), expected.all().size());
  for (size_t i = 0; i < actual.all().size(); ++i) {
    const Tensor& a = actual.all()[i]->value();
    const Tensor& b = expected.all()[i]->value();
    ASSERT_EQ(actual.all()[i]->name(), expected.all()[i]->name());
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(float)),
              0)
        << "parameter " << actual.all()[i]->name()
        << " diverged from the reference run";
  }
}

/// Runs `fn`, which must throw KddnError, and returns the error message.
std::string ThrownMessage(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const KddnError& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected KddnError";
  return "";
}

/// A fresh scratch directory under the test temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "kddn_robustness_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Fault injector unit tests.
// ---------------------------------------------------------------------------
TEST(FaultInjectorTest, UnarmedSitesAreNoOps) {
  FaultInjector::Instance().DisarmAll();
  KDDN_FAULT_POINT("robustness.unarmed");  // Must not throw.
  EXPECT_EQ(FaultInjector::Instance().HitCount("robustness.unarmed"), 0);
}

TEST(FaultInjectorTest, FiresExactlyOnTheArmedHitAndOnlyOnce) {
  auto& injector = FaultInjector::Instance();
  injector.Arm("robustness.third", /*fail_on_hit=*/2);
  KDDN_FAULT_POINT("robustness.third");
  KDDN_FAULT_POINT("robustness.third");
  const std::string message =
      ThrownMessage([] { KDDN_FAULT_POINT("robustness.third"); });
  EXPECT_NE(message.find("robustness.third"), std::string::npos) << message;
  // Fired once per arming: the retry after the "crash" proceeds normally.
  KDDN_FAULT_POINT("robustness.third");
  EXPECT_EQ(injector.HitCount("robustness.third"), 4);
  injector.Disarm("robustness.third");
  EXPECT_EQ(injector.HitCount("robustness.third"), 0);
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  {
    FaultInjector::ScopedFault fault("robustness.scoped");
    EXPECT_THROW(KDDN_FAULT_POINT("robustness.scoped"), KddnError);
  }
  KDDN_FAULT_POINT("robustness.scoped");  // Disarmed; must not throw.
  EXPECT_EQ(FaultInjector::Instance().HitCount("robustness.scoped"), 0);
}

// ---------------------------------------------------------------------------
// Checkpoint format: trainer state round-trips exactly; model-only
// checkpoints stay readable by both load paths.
// ---------------------------------------------------------------------------
TEST(CheckpointFormatTest, TrainerStateRoundTripsExactly) {
  models::BkDdn source(TinyConfig());
  nn::TrainerState state;
  state.completed_epochs = 3;
  state.seed = 77;
  state.best_validation_auc = 0.625;
  eval::CurvePoint point;
  point.epoch = 2;
  point.train_loss = 0.53125;
  point.validation_loss = 0.40625;
  point.validation_auc = 0.625;
  state.curve = {point};
  state.accumulators = {{"acc", Tensor::FromData({3}, {0.5f, 1.25f, 2.0f})}};
  state.best_params = {{"best", Tensor::FromData({2}, {-1.0f, 3.5f})}};

  std::stringstream buffer;
  nn::SaveCheckpoint(source.params(), &state, buffer);

  models::BkDdn restored(TinyConfig(14));  // Different init, same shapes.
  nn::TrainerState loaded;
  EXPECT_TRUE(nn::LoadCheckpoint(&restored.params(), &loaded, buffer));
  ExpectSameParams(restored.params(), source.params());
  EXPECT_EQ(loaded.completed_epochs, 3);
  EXPECT_EQ(loaded.seed, 77u);
  EXPECT_EQ(loaded.best_validation_auc, 0.625);
  ASSERT_EQ(loaded.curve.size(), 1u);
  EXPECT_EQ(loaded.curve[0].epoch, 2);
  EXPECT_EQ(loaded.curve[0].train_loss, 0.53125);
  EXPECT_EQ(loaded.curve[0].validation_loss, 0.40625);
  EXPECT_EQ(loaded.curve[0].validation_auc, 0.625);
  ASSERT_EQ(loaded.accumulators.size(), 1u);
  EXPECT_EQ(loaded.accumulators[0].first, "acc");
  EXPECT_EQ(loaded.accumulators[0].second[1], 1.25f);
  ASSERT_EQ(loaded.best_params.size(), 1u);
  EXPECT_EQ(loaded.best_params[0].first, "best");
  EXPECT_EQ(loaded.best_params[0].second[0], -1.0f);
}

TEST(CheckpointFormatTest, ModelOnlyCheckpointLoadsWithoutTrainerState) {
  models::BkDdn source(TinyConfig());
  std::stringstream buffer;
  nn::SaveParameters(source.params(), buffer);

  models::BkDdn restored(TinyConfig(14));
  nn::TrainerState state;
  EXPECT_FALSE(nn::LoadCheckpoint(&restored.params(), &state, buffer));
  ExpectSameParams(restored.params(), source.params());
}

TEST(CheckpointFormatTest, ModelOnlyLoaderIgnoresTrainerSection) {
  // Serving / --load consumers read trainer checkpoints as plain weights.
  models::BkDdn source(TinyConfig());
  nn::TrainerState state;
  state.completed_epochs = 1;
  state.seed = 5;
  std::stringstream buffer;
  nn::SaveCheckpoint(source.params(), &state, buffer);

  models::BkDdn restored(TinyConfig(14));
  nn::LoadParameters(&restored.params(), buffer);
  ExpectSameParams(restored.params(), source.params());
}

// ---------------------------------------------------------------------------
// Atomic checkpoint writes: a crash injected mid-write (body or commit)
// leaves the previous file intact and loadable; the disarmed retry succeeds.
// ---------------------------------------------------------------------------
class AtomicWriteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AtomicWriteTest, InjectedCrashPreservesThePreviousCheckpoint) {
  const std::string dir = ScratchDir(std::string("atomic_") +
                                     (std::string(GetParam()) == "nn.save.body"
                                          ? "body"
                                          : "commit"));
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.kddn";

  models::BkDdn first(TinyConfig(21));
  models::BkDdn second(TinyConfig(22));
  nn::SaveParametersToFile(first.params(), path);
  {
    FaultInjector::ScopedFault crash(GetParam());
    EXPECT_THROW(nn::SaveParametersToFile(second.params(), path), KddnError);
  }
  // The "crashed" write must not have clobbered the live checkpoint.
  models::BkDdn probe(TinyConfig(23));
  nn::LoadParametersFromFile(&probe.params(), path);
  ExpectSameParams(probe.params(), first.params());

  // After "recovery" (fault disarmed) the same write goes through.
  nn::SaveParametersToFile(second.params(), path);
  nn::LoadParametersFromFile(&probe.params(), path);
  ExpectSameParams(probe.params(), second.params());
}

INSTANTIATE_TEST_SUITE_P(CrashSites, AtomicWriteTest,
                         ::testing::Values("nn.save.body", "nn.save.commit"));

// ---------------------------------------------------------------------------
// Adagrad state export/import: a resumed optimizer continues bitwise.
// ---------------------------------------------------------------------------
TEST(AdagradStateTest, ImportedStateContinuesBitwise) {
  nn::ParameterSet straight_params, resumed_params;
  ag::NodePtr straight_w =
      straight_params.Create("w", Tensor::Full({3}, 1.0f));
  ag::NodePtr resumed_w = resumed_params.Create("w", Tensor::Full({3}, 1.0f));
  auto step = [](nn::ParameterSet& params, ag::NodePtr w, nn::Adagrad& opt) {
    ag::Backward(ag::SumAll(ag::Mul(w, w)));
    opt.Step(params.all());
  };

  nn::Adagrad straight_opt(0.1f);
  step(straight_params, straight_w, straight_opt);
  step(straight_params, straight_w, straight_opt);

  nn::Adagrad first_opt(0.1f);
  step(resumed_params, resumed_w, first_opt);
  nn::Adagrad second_opt(0.1f);  // "Restart": new optimizer, imported state.
  second_opt.ImportState(first_opt.ExportState());
  step(resumed_params, resumed_w, second_opt);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed_w->value()[i], straight_w->value()[i]) << "weight " << i;
  }
}

TEST(AdagradStateTest, ImportRejectsDuplicateAndUnnamedAccumulators) {
  nn::Adagrad opt(0.1f);
  EXPECT_THROW(opt.ImportState({{"a", Tensor::Full({1}, 0.0f)},
                                {"a", Tensor::Full({1}, 0.0f)}}),
               KddnError);
  EXPECT_THROW(opt.ImportState({{"", Tensor::Full({1}, 0.0f)}}), KddnError);
}

// ---------------------------------------------------------------------------
// Resume determinism: killing training at an epoch boundary and resuming
// from the checkpoint must be bitwise identical to never having crashed, at
// one and several threads.
// ---------------------------------------------------------------------------
class ResumeDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ResumeDeterminismTest, ResumedRunMatchesStraightRunBitwise) {
  const int threads = GetParam();
  const auto& train = World().dataset.train();
  const auto& validation = World().dataset.validation();
  const auto& test = World().dataset.test();
  const synth::Horizon horizon = synth::Horizon::kInHospital;

  core::TrainOptions options;
  options.epochs = 8;
  options.batch_size = 16;
  options.seed = 11;
  options.num_threads = threads;

  // Reference: the uninterrupted run.
  auto straight = MakeModel();
  eval::CurveRecorder straight_curve =
      core::Trainer(options).Train(straight.get(), train, validation, horizon);
  const double straight_auc =
      core::Trainer::EvaluateAuc(straight.get(), test, horizon);

  // "Crash" at the start of epoch 5: epochs 1-4 completed and checkpointed.
  core::TrainOptions checkpointed = options;
  checkpointed.checkpoint_dir =
      ScratchDir("resume_t" + std::to_string(threads));
  {
    FaultInjector::ScopedFault kill("core.train.epoch", /*fail_on_hit=*/4);
    auto crashed = MakeModel();
    EXPECT_THROW(core::Trainer(checkpointed)
                     .Train(crashed.get(), train, validation, horizon),
                 KddnError);
  }
  const std::string path = core::CheckpointPath(checkpointed.checkpoint_dir);
  ASSERT_TRUE(std::filesystem::exists(path));

  // The surviving checkpoint is a valid epoch-4 snapshot — readable by the
  // model-only loader and carrying four completed epochs of trainer state.
  {
    auto probe = MakeModel();
    nn::LoadParametersFromFile(&probe->params(), path);
    nn::TrainerState state;
    ASSERT_TRUE(nn::LoadCheckpointFromFile(&probe->params(), &state, path));
    EXPECT_EQ(state.completed_epochs, 4);
    EXPECT_EQ(state.seed, options.seed);
    EXPECT_EQ(state.curve.size(), 4u);
  }

  // Resume and finish epochs 5-8.
  checkpointed.resume = true;
  auto resumed = MakeModel();
  eval::CurveRecorder resumed_curve =
      core::Trainer(checkpointed)
          .Train(resumed.get(), train, validation, horizon);

  ExpectSameParams(resumed->params(), straight->params());
  EXPECT_EQ(core::Trainer::EvaluateAuc(resumed.get(), test, horizon),
            straight_auc);
  ASSERT_EQ(resumed_curve.points().size(), straight_curve.points().size());
  for (size_t i = 0; i < straight_curve.points().size(); ++i) {
    EXPECT_EQ(resumed_curve.points()[i].epoch,
              straight_curve.points()[i].epoch);
    EXPECT_EQ(resumed_curve.points()[i].train_loss,
              straight_curve.points()[i].train_loss);
    EXPECT_EQ(resumed_curve.points()[i].validation_loss,
              straight_curve.points()[i].validation_loss);
    EXPECT_EQ(resumed_curve.points()[i].validation_auc,
              straight_curve.points()[i].validation_auc);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeDeterminismTest,
                         ::testing::Values(1, 4));

TEST(ResumeCheckpointTest, SparseCheckpointsResumeFromTheLastBoundary) {
  // checkpoint_every=3 over 8 epochs checkpoints at 3, 6 and 8; a crash at
  // the start of epoch 8 resumes from the epoch-6 state and still converges
  // to the straight run bitwise.
  const auto& train = World().dataset.train();
  const auto& validation = World().dataset.validation();
  const synth::Horizon horizon = synth::Horizon::kInHospital;

  core::TrainOptions options;
  options.epochs = 8;
  options.batch_size = 16;
  options.seed = 11;

  auto straight = MakeModel();
  core::Trainer(options).Train(straight.get(), train, validation, horizon);

  core::TrainOptions checkpointed = options;
  checkpointed.checkpoint_dir = ScratchDir("resume_sparse");
  checkpointed.checkpoint_every = 3;
  {
    FaultInjector::ScopedFault kill("core.train.epoch", /*fail_on_hit=*/7);
    auto crashed = MakeModel();
    EXPECT_THROW(core::Trainer(checkpointed)
                     .Train(crashed.get(), train, validation, horizon),
                 KddnError);
  }
  nn::TrainerState state;
  {
    auto probe = MakeModel();
    ASSERT_TRUE(nn::LoadCheckpointFromFile(
        &probe->params(), &state,
        core::CheckpointPath(checkpointed.checkpoint_dir)));
  }
  EXPECT_EQ(state.completed_epochs, 6);

  checkpointed.resume = true;
  auto resumed = MakeModel();
  core::Trainer(checkpointed).Train(resumed.get(), train, validation, horizon);
  ExpectSameParams(resumed->params(), straight->params());
}

TEST(ResumeCheckpointTest, ResumeRejectsASeedMismatch) {
  const auto& train = World().dataset.train();
  const auto& validation = World().dataset.validation();
  const synth::Horizon horizon = synth::Horizon::kInHospital;

  core::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 16;
  options.seed = 11;
  options.checkpoint_dir = ScratchDir("resume_seed");
  auto model = MakeModel();
  core::Trainer(options).Train(model.get(), train, validation, horizon);

  options.resume = true;
  options.seed = 12;  // Different shuffle stream: resuming would be silently
                      // wrong, so it must refuse.
  auto resumed = MakeModel();
  const std::string message = ThrownMessage([&] {
    core::Trainer(options).Train(resumed.get(), train, validation, horizon);
  });
  EXPECT_NE(message.find("seed"), std::string::npos) << message;
}

// ---------------------------------------------------------------------------
// Options validation: nonsensical settings fail at construction.
// ---------------------------------------------------------------------------
TEST(TrainOptionsValidationTest, InvalidOptionsThrowAtConstruction) {
  const auto with = [](const std::function<void(core::TrainOptions*)>& mutate) {
    core::TrainOptions options;
    mutate(&options);
    return options;
  };
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->epochs = 0; })}, KddnError);
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->batch_size = 0; })},
               KddnError);
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->learning_rate = 0.0f; })},
               KddnError);
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->num_threads = -1; })},
               KddnError);
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->grad_chunk_size = 0; })},
               KddnError);
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->checkpoint_every = 0; })},
               KddnError);
  // Resume without a checkpoint directory is a contradiction.
  EXPECT_THROW(core::Trainer{with([](auto* o) { o->resume = true; })},
               KddnError);
  // The defaults are valid.
  core::Trainer ok{core::TrainOptions{}};
}

TEST(EngineOptionsValidationTest, InvalidOptionsThrowAtConstruction) {
  models::BkDdn model(TinyConfig());
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);
  const auto expect_throws = [&](serve::EngineOptions options) {
    EXPECT_THROW(serve::InferenceEngine(&frozen, options), KddnError);
  };
  serve::EngineOptions options;
  options.max_batch = 0;
  expect_throws(options);
  options = {};
  options.flush_deadline_ms = -1;
  expect_throws(options);
  options = {};
  options.cache_capacity = -1;
  expect_throws(options);
  options = {};
  options.max_queue = -1;
  expect_throws(options);
  options = {};
  options.deadline_ms = -1;
  expect_throws(options);
}

// ---------------------------------------------------------------------------
// Loader error paths: malformed mid-file input names the offending line, and
// an injected read failure aborts instead of returning a partial result.
// ---------------------------------------------------------------------------
std::string ValidKbLine(const std::string& cui) {
  return cui + "\t" +
         kb::SemanticTypeName(kb::SemanticType::kDiseaseOrSyndrome) +
         "\tHeart failure\thf|chf\tA disease.\n";
}

TEST(KbLoaderErrorTest, UnknownSemanticTypeNamesTheLine) {
  std::istringstream in(ValidKbLine("C001") +
                        "C002\tnot-a-type\tName\t\tdef\n");
  const std::string message =
      ThrownMessage([&] { kb::ReadKnowledgeBaseTsv(in); });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("unknown semantic type"), std::string::npos)
      << message;
}

TEST(KbLoaderErrorTest, WrongFieldCountNamesTheLine) {
  std::istringstream in(ValidKbLine("C001") + ValidKbLine("C002") +
                        "C003\tonly two fields\n");
  const std::string message =
      ThrownMessage([&] { kb::ReadKnowledgeBaseTsv(in); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
}

TEST(KbLoaderErrorTest, DuplicateCuiNamesTheLine) {
  std::istringstream in(ValidKbLine("C001") + ValidKbLine("C001"));
  const std::string message =
      ThrownMessage([&] { kb::ReadKnowledgeBaseTsv(in); });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate CUI"), std::string::npos) << message;
}

TEST(KbLoaderErrorTest, InjectedReadFailureAbortsTheLoad) {
  std::ostringstream serialized;
  kb::WriteKnowledgeBaseTsv(World().kb, serialized);
  std::istringstream in(serialized.str());
  FaultInjector::ScopedFault fault("kb.read.line", /*fail_on_hit=*/2);
  // Must throw, not hand back a two-line knowledge base.
  EXPECT_THROW(kb::ReadKnowledgeBaseTsv(in), KddnError);
}

TEST(KbLoaderErrorTest, InjectedWriteFailureSurfaces) {
  std::ostringstream out;
  FaultInjector::ScopedFault fault("kb.write.line", /*fail_on_hit=*/1);
  EXPECT_THROW(kb::WriteKnowledgeBaseTsv(World().kb, out), KddnError);
}

std::string ValidCohortLine(int id) {
  return "{\"id\":" + std::to_string(id) +
         ",\"age\":70,\"outcome\":1,\"diseases\":[\"C1\"],"
         "\"worsening\":[true],\"text\":\"note\"}\n";
}

TEST(CorpusLoaderErrorTest, UnknownKeyNamesTheLine) {
  std::istringstream in(ValidCohortLine(1) + "{\"id\":2,\"oops\":3}\n");
  const std::string message =
      ThrownMessage([&] { synth::ReadCohortJsonl(in); });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("unknown key"), std::string::npos) << message;
}

TEST(CorpusLoaderErrorTest, MalformedJsonNamesTheLine) {
  std::istringstream in(ValidCohortLine(1) + ValidCohortLine(2) +
                        "{\"id\":3,\"age\":\n");
  const std::string message =
      ThrownMessage([&] { synth::ReadCohortJsonl(in); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
}

TEST(CorpusLoaderErrorTest, OutOfRangeOutcomeNamesTheLine) {
  std::istringstream in("{\"id\":1,\"outcome\":7}\n");
  const std::string message =
      ThrownMessage([&] { synth::ReadCohortJsonl(in); });
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("bad outcome"), std::string::npos) << message;
}

TEST(CorpusLoaderErrorTest, InjectedReadFailureAbortsTheLoad) {
  std::istringstream in(ValidCohortLine(1) + ValidCohortLine(2) +
                        ValidCohortLine(3));
  FaultInjector::ScopedFault fault("corpus.read.line", /*fail_on_hit=*/1);
  EXPECT_THROW(synth::ReadCohortJsonl(in), KddnError);
}

TEST(CorpusLoaderErrorTest, InjectedWriteFailureSurfaces) {
  synth::CohortConfig config;
  config.num_patients = 3;
  config.seed = 4;
  const synth::Cohort cohort = synth::Cohort::Generate(config, World().kb);
  std::ostringstream out;
  FaultInjector::ScopedFault fault("corpus.write.line", /*fail_on_hit=*/1);
  EXPECT_THROW(synth::WriteCohortJsonl(cohort, out), KddnError);
}

// ---------------------------------------------------------------------------
// Admission control: queue-full shedding, deadline timeouts, and the
// shed/timeout/degraded counters in the stats snapshot.
// ---------------------------------------------------------------------------
TEST(AdmissionControlTest, BurstBeyondMaxQueueShedsAtTheDoor) {
  models::BkDdn model(TinyConfig());
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);
  serve::EngineOptions options;
  options.max_batch = 64;           // Never fills from this test...
  options.flush_deadline_ms = 1000;  // ...and the flush deadline is far off,
                                     // so queued requests stay queued.
  options.max_queue = 3;
  std::vector<std::future<serve::Scored>> admitted;
  {
    serve::InferenceEngine engine(&frozen, options);
    for (int i = 0; i < 3; ++i) {
      admitted.push_back(engine.ScoreAsync(TinyExample(i)));
    }
    // The burst's fourth request finds the queue at max_queue.
    try {
      engine.ScoreAsync(TinyExample(3));
      FAIL() << "expected the over-limit request to be shed";
    } catch (const serve::ShedError& error) {
      EXPECT_EQ(error.reason(), serve::ShedReason::kQueueFull);
      EXPECT_NE(std::string(error.what()).find("max_queue"),
                std::string::npos);
    }
    // The non-throwing API reports the same outcome as a value.
    const serve::ScoreResult result = engine.TryScore(TinyExample(4));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.shed, serve::ShedReason::kQueueFull);
    EXPECT_STREQ(serve::ShedReasonName(result.shed), "queue-full");

    const serve::StatsSnapshot stats = engine.stats();
    EXPECT_EQ(stats.shed, 2);
    EXPECT_EQ(stats.timeouts, 0);
    EXPECT_NE(stats.ToJson().find("\"shed\": 2"), std::string::npos)
        << stats.ToJson();
  }  // Shutdown still drains the admitted requests.
  for (std::future<serve::Scored>& future : admitted) {
    const float p = future.get().score;
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(AdmissionControlTest, StaleRequestsTimeOutInsteadOfBurningABatchSlot) {
  models::BkDdn model(TinyConfig());
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);
  serve::EngineOptions options;
  options.max_batch = 64;
  options.flush_deadline_ms = 50;  // The batcher can only wake at +50ms...
  options.deadline_ms = 1;         // ...by which time the request is stale.
  serve::InferenceEngine engine(&frozen, options);
  std::future<serve::Scored> future = engine.ScoreAsync(TinyExample());
  try {
    future.get();
    FAIL() << "expected the stale request to be shed";
  } catch (const serve::ShedError& error) {
    EXPECT_EQ(error.reason(), serve::ShedReason::kDeadlineExceeded);
  }
  const serve::StatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.requests, 0);  // Shed requests are never scored.
  EXPECT_NE(stats.ToJson().find("\"timeouts\": 1"), std::string::npos)
      << stats.ToJson();
}

TEST(AdmissionControlTest, StatsJsonCarriesAllRobustnessCounters) {
  serve::Stats stats;
  stats.RecordShed();
  stats.RecordTimeout();
  stats.RecordDegraded();
  const serve::StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.shed, 1);
  EXPECT_EQ(snapshot.timeouts, 1);
  EXPECT_EQ(snapshot.degraded, 1);
  const std::string json = snapshot.ToJson();
  for (const char* key : {"\"shed\"", "\"timeouts\"", "\"degraded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation: a concept-extraction failure serves the text branch
// against a <pad> concept row, ticks the degraded counter, and is never
// cached — a recovered extractor serves real concepts on the next miss.
// ---------------------------------------------------------------------------
TEST(GracefulDegradationTest, ExtractionFailureDegradesToPadConcepts) {
  models::BkDdn model(World().model_config);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);
  serve::NotePipeline pipeline;
  pipeline.word_vocab = &World().dataset.word_vocab();
  pipeline.concept_vocab = &World().dataset.concept_vocab();
  pipeline.extractor = World().extractor.get();
  pipeline.options = World().data_options;
  const std::string note =
      "pt w/ chf exacerbation, worsening pleural effusions bilaterally";

  // References from an unfaulted engine: the full-pipeline score and the
  // score of the same words against a <pad> concept row.
  serve::InferenceEngine reference(&frozen, pipeline);
  const data::Example full = reference.EncodeNote(note);
  data::Example padded = full;
  padded.concept_ids = {text::Vocabulary::kPadId};
  const float full_score = reference.Score(full);
  const float degraded_score = reference.Score(padded);

  serve::InferenceEngine engine(&frozen, pipeline);
  {
    FaultInjector::ScopedFault broken("serve.encode.extract");
    EXPECT_EQ(engine.ScoreNote(note), degraded_score);
  }
  EXPECT_EQ(engine.stats().degraded, 1);
  // The degraded encoding was not cached: with extraction healthy again the
  // same note takes a fresh miss and scores through the real concepts.
  EXPECT_EQ(engine.ScoreNote(note), full_score);
  EXPECT_EQ(engine.stats().cache_misses, 2);
  EXPECT_EQ(engine.stats().cache_hits, 0);
  // The non-throwing note API returns ok results on the healthy path.
  const serve::ScoreResult result = engine.TryScoreNote(note);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.score, full_score);
}

}  // namespace
}  // namespace kddn
