#include "autograd/node.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "testing/grad_check.h"
#include "testing/gradient_check.h"

namespace kddn::ag {
namespace {

using ::kddn::testing::ExpectGradCheck;
using ::kddn::testing::ExpectGradientsMatchFiniteDifference;
using ::kddn::testing::GradCheckOptions;

NodePtr RandomLeaf(std::vector<int> shape, Rng* rng, const std::string& name) {
  return Node::Leaf(RandomNormal(std::move(shape), 0.0f, 1.0f, rng),
                    /*requires_grad=*/true, name);
}

TEST(NodeTest, LeafHoldsValue) {
  NodePtr leaf = Node::Leaf(Tensor::FromData({2}, {1, 2}), true, "x");
  EXPECT_EQ(leaf->value().at(1), 2.0f);
  EXPECT_TRUE(leaf->requires_grad());
  EXPECT_TRUE(leaf->parents().empty());
}

TEST(NodeTest, RequiresGradPropagates) {
  NodePtr a = Node::Leaf(Tensor({2}), false, "a");
  NodePtr b = Node::Leaf(Tensor({2}), true, "b");
  EXPECT_FALSE(Add(a, a)->requires_grad());
  EXPECT_TRUE(Add(a, b)->requires_grad());
}

TEST(NodeTest, ScalarValueChecksShape) {
  NodePtr scalar = Node::Leaf(Tensor::FromData({1}, {3.0f}), false, "s");
  EXPECT_EQ(ScalarValue(scalar), 3.0f);
  NodePtr vec = Node::Leaf(Tensor({3}), false, "v");
  EXPECT_THROW(ScalarValue(vec), KddnError);
}

TEST(BackwardTest, SimpleChainRule) {
  // loss = mean(2 * x), d loss/dx_i = 2/n.
  NodePtr x = Node::Leaf(Tensor::FromData({4}, {1, 2, 3, 4}), true, "x");
  NodePtr loss = MeanAll(Scale(x, 2.0f));
  Backward(loss);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->grad()[i], 0.5f, 1e-6f);
  }
}

TEST(BackwardTest, LeafGradAccumulatesAcrossGraphs) {
  NodePtr x = Node::Leaf(Tensor::FromData({2}, {1, 1}), true, "x");
  Backward(SumAll(x));
  Backward(SumAll(x));
  EXPECT_NEAR(x->grad()[0], 2.0f, 1e-6f);
  x->ZeroGrad();
  EXPECT_EQ(x->grad()[0], 0.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // loss = sum(x + x): gradient 2 per element.
  NodePtr x = Node::Leaf(Tensor::FromData({3}, {1, 2, 3}), true, "x");
  Backward(SumAll(Add(x, x)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x->grad()[i], 2.0f, 1e-6f);
  }
}

TEST(GradCheck, AddSubMulScale) {
  Rng rng(1);
  NodePtr a = RandomLeaf({3, 2}, &rng, "a");
  NodePtr b = RandomLeaf({3, 2}, &rng, "b");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(Mul(Sub(Add(a, b), Scale(b, 0.3f)), a)); }, {a, b});
}

TEST(GradCheck, MatMul) {
  Rng rng(2);
  NodePtr a = RandomLeaf({3, 4}, &rng, "a");
  NodePtr b = RandomLeaf({4, 2}, &rng, "b");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(MatMul(a, b)); }, {a, b});
}

TEST(GradCheck, MatMulABt) {
  Rng rng(3);
  NodePtr a = RandomLeaf({3, 4}, &rng, "a");
  NodePtr b = RandomLeaf({5, 4}, &rng, "b");
  // Square the product so the gradient depends on both inputs nontrivially.
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr p = MatMulABt(a, b);
        return MeanAll(Mul(p, p));
      },
      {a, b});
}

TEST(GradCheck, TransposeAndReshape) {
  Rng rng(4);
  NodePtr a = RandomLeaf({3, 4}, &rng, "a");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr t = Transpose(a);
        NodePtr r = Reshape(t, {2, 6});
        return MeanAll(Mul(r, r));
      },
      {a});
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(5);
  // Keep values away from 0 so finite differences are valid.
  Tensor init = RandomNormal({4, 3}, 0.0f, 1.0f, &rng);
  for (int64_t i = 0; i < init.size(); ++i) {
    if (std::fabs(init[i]) < 0.2f) {
      init[i] = init[i] < 0 ? -0.5f : 0.5f;
    }
  }
  NodePtr a = Node::Leaf(init, true, "a");
  ExpectGradientsMatchFiniteDifference([&] { return MeanAll(Relu(a)); }, {a});
}

TEST(GradCheck, Tanh) {
  Rng rng(6);
  NodePtr a = RandomLeaf({2, 5}, &rng, "a");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(Mul(Tanh(a), Tanh(a))); }, {a});
}

TEST(GradCheck, SoftmaxRows) {
  Rng rng(7);
  NodePtr a = RandomLeaf({3, 4}, &rng, "a");
  NodePtr w = RandomLeaf({3, 4}, &rng, "w");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(Mul(SoftmaxRows(a), w)); }, {a, w});
}

TEST(GradCheck, ConcatRank1) {
  Rng rng(8);
  NodePtr a = RandomLeaf({3}, &rng, "a");
  NodePtr b = RandomLeaf({2}, &rng, "b");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr c = Concat({a, b}, 0);
        return MeanAll(Mul(c, c));
      },
      {a, b});
}

TEST(GradCheck, ConcatRank2BothAxes) {
  Rng rng(9);
  NodePtr a = RandomLeaf({2, 3}, &rng, "a");
  NodePtr b = RandomLeaf({2, 3}, &rng, "b");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr rows = Concat({a, b}, 0);
        NodePtr cols = Concat({a, b}, 1);
        return Add(MeanAll(Mul(rows, rows)), MeanAll(Mul(cols, cols)));
      },
      {a, b});
}

TEST(ConcatTest, ShapeChecks) {
  NodePtr a = Node::Leaf(Tensor({2, 3}), false, "a");
  NodePtr b = Node::Leaf(Tensor({2, 4}), false, "b");
  EXPECT_THROW(Concat({a, b}, 0), KddnError);   // width mismatch
  EXPECT_NO_THROW(Concat({a, b}, 1));            // height matches
  EXPECT_THROW(Concat({}, 0), KddnError);
}

TEST(GradCheck, EmbeddingLookup) {
  Rng rng(10);
  NodePtr table = RandomLeaf({6, 3}, &rng, "emb");
  const std::vector<int> ids = {0, 2, 2, 5};  // Repeats accumulate gradient.
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr e = EmbeddingLookup(table, ids);
        return MeanAll(Mul(e, e));
      },
      {table});
}

TEST(EmbeddingLookupTest, OutOfRangeThrows) {
  NodePtr table = Node::Leaf(Tensor({4, 2}), true, "emb");
  EXPECT_THROW(EmbeddingLookup(table, {4}), KddnError);
  EXPECT_THROW(EmbeddingLookup(table, {-1}), KddnError);
  EXPECT_THROW(EmbeddingLookup(table, std::vector<int>{}), KddnError);
}

TEST(GradCheck, UnfoldAndPadRows) {
  Rng rng(11);
  NodePtr x = RandomLeaf({5, 2}, &rng, "x");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr padded = PadRows(x, 7);
        NodePtr u = Unfold(padded, 3);
        return MeanAll(Mul(u, u));
      },
      {x});
}

TEST(UnfoldTest, ValuesAreWindows) {
  NodePtr x = Node::Leaf(Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6}), false,
                         "x");
  NodePtr u = Unfold(x, 2);
  ASSERT_EQ(u->value().dim(0), 2);
  ASSERT_EQ(u->value().dim(1), 4);
  EXPECT_EQ(u->value().at(0, 0), 1.0f);
  EXPECT_EQ(u->value().at(0, 3), 4.0f);
  EXPECT_EQ(u->value().at(1, 0), 3.0f);
  EXPECT_EQ(u->value().at(1, 3), 6.0f);
  EXPECT_THROW(Unfold(x, 4), KddnError);
}

TEST(PadRowsTest, IdentityWhenLongEnough) {
  NodePtr x = Node::Leaf(Tensor({5, 2}), false, "x");
  EXPECT_EQ(PadRows(x, 3).get(), x.get());
  NodePtr padded = PadRows(x, 8);
  EXPECT_EQ(padded->value().dim(0), 8);
}

TEST(GradCheck, MaxOverTime) {
  Rng rng(12);
  NodePtr x = RandomLeaf({6, 4}, &rng, "x");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(MaxOverTime(x)); }, {x});
}

TEST(MaxOverTimeTest, PicksColumnMaxima) {
  NodePtr x = Node::Leaf(Tensor::FromData({3, 2}, {1, 9, 5, 2, 3, 4}), false,
                         "x");
  NodePtr m = MaxOverTime(x);
  EXPECT_EQ(m->value().at(0), 5.0f);
  EXPECT_EQ(m->value().at(1), 9.0f);
}

TEST(GradCheck, AddRowBroadcast) {
  Rng rng(13);
  NodePtr x = RandomLeaf({4, 3}, &rng, "x");
  NodePtr bias = RandomLeaf({3}, &rng, "b");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr y = AddRowBroadcast(x, bias);
        return MeanAll(Mul(y, y));
      },
      {x, bias});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(14);
  NodePtr logits = RandomLeaf({4}, &rng, "logits");
  ExpectGradientsMatchFiniteDifference(
      [&] { return SoftmaxCrossEntropy(logits, 2); }, {logits});
}

TEST(SoftmaxCrossEntropyTest, LossMatchesClosedForm) {
  NodePtr logits =
      Node::Leaf(Tensor::FromData({2}, {0.0f, 0.0f}), true, "logits");
  NodePtr loss = SoftmaxCrossEntropy(logits, 0);
  EXPECT_NEAR(ScalarValue(loss), std::log(2.0f), 1e-5f);
  Backward(loss);
  EXPECT_NEAR(logits->grad()[0], -0.5f, 1e-5f);
  EXPECT_NEAR(logits->grad()[1], 0.5f, 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, LabelRangeChecked) {
  NodePtr logits = Node::Leaf(Tensor({3}), true, "logits");
  EXPECT_THROW(SoftmaxCrossEntropy(logits, 3), KddnError);
  EXPECT_THROW(SoftmaxCrossEntropy(logits, -1), KddnError);
}

TEST(SoftmaxProbsTest, NormalisedAndStable) {
  std::vector<float> p = SoftmaxProbs(Tensor::FromData({3}, {500, 500, 500}));
  EXPECT_NEAR(p[0], 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(15);
  NodePtr x = RandomLeaf({4, 4}, &rng, "x");
  NodePtr y = Dropout(x, 0.5f, /*training=*/false, nullptr);
  EXPECT_EQ(y.get(), x.get());
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  Rng rng(16);
  NodePtr x = Node::Leaf(Tensor::Full({100, 100}, 1.0f), true, "x");
  NodePtr y = Dropout(x, 0.5f, /*training=*/true, &rng);
  // Inverted dropout: E[y] == E[x]; survivors are doubled.
  EXPECT_NEAR(Mean(y->value()), 1.0f, 0.05f);
  int zeros = 0;
  for (int64_t i = 0; i < y->value().size(); ++i) {
    const float v = y->value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    zeros += (v == 0.0f) ? 1 : 0;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
}

TEST(DropoutTest, BackwardRoutesThroughMask) {
  Rng rng(17);
  NodePtr x = Node::Leaf(Tensor::Full({10, 10}, 1.0f), true, "x");
  NodePtr y = Dropout(x, 0.5f, true, &rng);
  Backward(SumAll(y));
  for (int64_t i = 0; i < x->value().size(); ++i) {
    const bool dropped = (y->value()[i] == 0.0f);
    EXPECT_FLOAT_EQ(x->grad()[i], dropped ? 0.0f : 2.0f);
  }
}

TEST(DropoutTest, InvalidRateThrows) {
  NodePtr x = Node::Leaf(Tensor({2}), true, "x");
  Rng rng(1);
  EXPECT_THROW(Dropout(x, 1.0f, true, &rng), KddnError);
  EXPECT_THROW(Dropout(x, -0.1f, true, &rng), KddnError);
}

TEST(GradCheck, SoftmaxCrossEntropyEndToEnd) {
  // Tight (rel. error < 1e-3) end-to-end check of the training loss head:
  // embedding-style lookup -> matmul feature mix -> rank-1 logits ->
  // softmax cross-entropy, against central finite differences.
  Rng rng(31);
  NodePtr table = RandomLeaf({6, 4}, &rng, "table");
  NodePtr mix = RandomLeaf({4, 4}, &rng, "mix");
  NodePtr readout = RandomLeaf({4, 2}, &rng, "readout");
  auto build = [&] {
    NodePtr embedded = EmbeddingLookup(table, {1, 4, 2, 4});
    NodePtr features = Tanh(MatMul(embedded, mix));
    NodePtr pooled = MaxOverTime(MatMul(features, readout));
    return SoftmaxCrossEntropy(pooled, 1);
  };
  ExpectGradCheck(build, {table, mix, readout}, GradCheckOptions{});
}

TEST(GradCheck, SoftmaxCrossEntropyBothLabels) {
  Rng rng(32);
  NodePtr logits_src = RandomLeaf({5, 2}, &rng, "w");
  for (int label = 0; label < 2; ++label) {
    ExpectGradCheck(
        [&] { return SoftmaxCrossEntropy(MaxOverTime(logits_src), label); },
        {logits_src}, GradCheckOptions{});
  }
}

TEST(GradCheck, AttentionComposite) {
  // End-to-end co-attention block built from primitives, as used by AK-DDN:
  // out = softmax(Q K^T) K.
  Rng rng(18);
  NodePtr q = RandomLeaf({3, 4}, &rng, "q");
  NodePtr k = RandomLeaf({5, 4}, &rng, "k");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr weights = SoftmaxRows(MatMulABt(q, k));
        NodePtr mixed = MatMul(weights, k);
        return MeanAll(Mul(mixed, mixed));
      },
      {q, k}, 1e-2f, 3e-2f);
}

}  // namespace
}  // namespace kddn::ag

namespace kddn::ag {
namespace {

using ::kddn::testing::ExpectGradientsMatchFiniteDifference;

TEST(GradCheck, Sigmoid) {
  Rng rng(21);
  NodePtr a = Node::Leaf(RandomNormal({3, 4}, 0, 1, &rng), true, "a");
  ExpectGradientsMatchFiniteDifference(
      [&] { return MeanAll(Mul(Sigmoid(a), Sigmoid(a))); }, {a});
}

TEST(SigmoidTest, Range) {
  NodePtr a = Node::Leaf(Tensor::FromData({3}, {-100, 0, 100}), false, "a");
  NodePtr y = Sigmoid(a);
  EXPECT_NEAR(y->value().at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(y->value().at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(y->value().at(2), 1.0f, 1e-6f);
}

TEST(GradCheck, SliceRows) {
  Rng rng(22);
  NodePtr x = Node::Leaf(RandomNormal({5, 3}, 0, 1, &rng), true, "x");
  ExpectGradientsMatchFiniteDifference(
      [&] {
        NodePtr top = SliceRows(x, 0, 2);
        NodePtr bottom = SliceRows(x, 3, 5);
        return MeanAll(Mul(Concat({top, bottom}, 0),
                           Concat({bottom, top}, 0)));
      },
      {x});
}

TEST(SliceRowsTest, ValuesAndBounds) {
  NodePtr x = Node::Leaf(Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6}), false,
                         "x");
  NodePtr middle = SliceRows(x, 1, 2);
  ASSERT_EQ(middle->value().dim(0), 1);
  EXPECT_EQ(middle->value().at(0, 0), 3.0f);
  EXPECT_EQ(middle->value().at(0, 1), 4.0f);
  EXPECT_THROW(SliceRows(x, 2, 2), KddnError);
  EXPECT_THROW(SliceRows(x, -1, 1), KddnError);
  EXPECT_THROW(SliceRows(x, 0, 4), KddnError);
}

}  // namespace
}  // namespace kddn::ag
