#include "text/tokenizer.h"

#include "common/check.h"
#include "gtest/gtest.h"
#include "text/lemmatizer.h"
#include "text/stopwords.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace kddn::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  const auto words = TokenizeWords("Patient has CHF; no edema/effusion.");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], "patient");
  EXPECT_EQ(words[2], "chf");
  EXPECT_EQ(words[4], "edema");
  EXPECT_EQ(words[5], "effusion");
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  const std::string note = "No acute distress.";
  const auto tokens = Tokenize(note);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(note.substr(tokens[1].begin, tokens[1].end - tokens[1].begin),
            "acute");
  EXPECT_EQ(tokens[2].begin, 9);
  EXPECT_EQ(tokens[2].end, 17);
}

TEST(TokenizerTest, KeepsDigitsAndHandlesEmpty) {
  const auto words = TokenizeWords("O2 sat 95%");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "o2");
  EXPECT_EQ(words[2], "95");
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ... !!").empty());
}

TEST(TokenizerTest, SplitSentences) {
  const auto sentences =
      SplitSentences("Lungs clear. No effusion; stable overnight.\nPlan: d/c");
  ASSERT_EQ(sentences.size(), 4u);
  EXPECT_EQ(sentences[0], "Lungs clear");
  EXPECT_EQ(sentences[1], " No effusion");
}

TEST(TokenizerTest, SplitSentencesDropsEmpties) {
  EXPECT_TRUE(SplitSentences("...!!!").empty());
  EXPECT_EQ(SplitSentences("one").size(), 1u);
}

TEST(LemmatizerTest, IrregularForms) {
  Lemmatizer lemmatizer;
  EXPECT_EQ(lemmatizer.Lemma("was"), "be");
  EXPECT_EQ(lemmatizer.Lemma("diagnoses"), "diagnosis");
  EXPECT_EQ(lemmatizer.Lemma("emboli"), "embolus");
  EXPECT_EQ(lemmatizer.Lemma("atria"), "atrium");
  EXPECT_EQ(lemmatizer.Lemma("worse"), "bad");
}

TEST(LemmatizerTest, RegularPlurals) {
  Lemmatizer lemmatizer;
  EXPECT_EQ(lemmatizer.Lemma("effusions"), "effusion");
  EXPECT_EQ(lemmatizer.Lemma("therapies"), "therapy");
  EXPECT_EQ(lemmatizer.Lemma("masses"), "mass");
  EXPECT_EQ(lemmatizer.Lemma("coughs"), "cough");
  EXPECT_EQ(lemmatizer.Lemma("lungs"), "lung");
}

TEST(LemmatizerTest, MisleadingSuffixesPreserved) {
  Lemmatizer lemmatizer;
  EXPECT_EQ(lemmatizer.Lemma("status"), "status");
  EXPECT_EQ(lemmatizer.Lemma("diabetes"), "diabetes");
  EXPECT_EQ(lemmatizer.Lemma("ascites"), "ascites");
  EXPECT_EQ(lemmatizer.Lemma("pus"), "pus");
  EXPECT_EQ(lemmatizer.Lemma("mass"), "mass");
}

TEST(LemmatizerTest, IngAndEdForms) {
  Lemmatizer lemmatizer;
  EXPECT_EQ(lemmatizer.Lemma("increasing"), "increase");
  EXPECT_EQ(lemmatizer.Lemma("improved"), "improve");
  EXPECT_EQ(lemmatizer.Lemma("resolved"), "resolve");
  EXPECT_EQ(lemmatizer.Lemma("monitoring"), "monitor");
  EXPECT_EQ(lemmatizer.Lemma("stopped"), "stop");
}

TEST(LemmatizerTest, ShortWordsUntouched) {
  Lemmatizer lemmatizer;
  EXPECT_EQ(lemmatizer.Lemma("icu"), "icu");
  EXPECT_EQ(lemmatizer.Lemma("ed"), "ed");
  EXPECT_EQ(lemmatizer.Lemma("leg"), "leg");
}

TEST(LemmatizerTest, LemmatizeAllPreservesOrder) {
  Lemmatizer lemmatizer;
  const auto lemmas = lemmatizer.LemmatizeAll({"lungs", "were", "clear"});
  ASSERT_EQ(lemmas.size(), 3u);
  EXPECT_EQ(lemmas[0], "lung");
  EXPECT_EQ(lemmas[1], "be");
  EXPECT_EQ(lemmas[2], "clear");
}

TEST(StopwordsTest, ContainsFunctionWordsOnly) {
  StopwordList stopwords;
  EXPECT_TRUE(stopwords.Contains("the"));
  EXPECT_TRUE(stopwords.Contains("there"));
  EXPECT_TRUE(stopwords.Contains("no"));
  EXPECT_FALSE(stopwords.Contains("tamponade"));
  EXPECT_FALSE(stopwords.Contains("effusion"));
  EXPECT_GT(stopwords.size(), 100u);
}

TEST(StopwordsTest, FilterKeepsOrder) {
  StopwordList stopwords;
  const auto kept = stopwords.Filter(
      {"there", "is", "no", "mediastinal", "vascular", "engorgement"});
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0], "mediastinal");
  EXPECT_EQ(kept[2], "engorgement");
}

TEST(VocabularyTest, BuildAssignsFrequencyOrder) {
  Vocabulary vocab = Vocabulary::Build(
      {{"cough", "fever", "cough"}, {"cough", "sepsis"}});
  EXPECT_EQ(vocab.Id("cough"), 2);  // Most frequent after sentinels.
  EXPECT_EQ(vocab.size(), 5);
  EXPECT_EQ(vocab.TokenOf(Vocabulary::kPadId), "<pad>");
  EXPECT_EQ(vocab.TokenOf(Vocabulary::kUnkId), "<unk>");
  EXPECT_EQ(vocab.Frequency(vocab.Id("cough")), 3);
}

TEST(VocabularyTest, DeterministicTieBreak) {
  Vocabulary vocab = Vocabulary::Build({{"beta", "alpha"}});
  EXPECT_EQ(vocab.Id("alpha"), 2);
  EXPECT_EQ(vocab.Id("beta"), 3);
}

TEST(VocabularyTest, MinCountDropsRareTokens) {
  Vocabulary vocab =
      Vocabulary::Build({{"common", "common", "rare"}}, /*min_count=*/2);
  EXPECT_TRUE(vocab.Contains("common"));
  EXPECT_FALSE(vocab.Contains("rare"));
  EXPECT_THROW(Vocabulary::Build({}, 0), KddnError);
}

TEST(VocabularyTest, EncodeMapsUnknowns) {
  Vocabulary vocab = Vocabulary::Build({{"cough"}});
  const auto with_unk = vocab.Encode({"cough", "zebra"});
  ASSERT_EQ(with_unk.size(), 2u);
  EXPECT_EQ(with_unk[1], Vocabulary::kUnkId);
  const auto dropped = vocab.Encode({"cough", "zebra"}, /*drop_unknown=*/true);
  ASSERT_EQ(dropped.size(), 1u);
}

TEST(VocabularyTest, IdRangeChecks) {
  Vocabulary vocab = Vocabulary::Build({{"a"}});
  EXPECT_THROW(vocab.TokenOf(99), KddnError);
  EXPECT_THROW(vocab.Frequency(-1), KddnError);
}

TEST(TfIdfTest, IdfRanksRareWordsHigher) {
  Vocabulary vocab =
      Vocabulary::Build({{"common", "rare"}, {"common"}, {"common"}});
  const std::vector<std::vector<int>> docs = {
      vocab.Encode({"common", "rare"}),
      vocab.Encode({"common"}),
      vocab.Encode({"common"}),
  };
  TfIdf tfidf(vocab, docs);
  EXPECT_GT(tfidf.Idf(vocab.Id("rare")), tfidf.Idf(vocab.Id("common")));
  EXPECT_EQ(tfidf.num_docs(), 3);
}

TEST(TfIdfTest, TopKSelectsSalientIds) {
  Vocabulary vocab = Vocabulary::Build(
      {{"cough", "cough", "cough", "fever"}, {"cough", "sepsis"}});
  const std::vector<std::vector<int>> docs = {
      vocab.Encode({"cough", "cough", "cough", "fever"}),
      vocab.Encode({"cough", "sepsis"}),
  };
  TfIdf tfidf(vocab, docs);
  const auto top1 = tfidf.TopKIds(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], vocab.Id("cough"));  // tf dominates here.
  const auto top10 = tfidf.TopKIds(10);
  EXPECT_EQ(top10.size(), 3u);  // Never exceeds live vocabulary.
  EXPECT_THROW(tfidf.TopKIds(0), KddnError);
}

TEST(TfIdfTest, CountVectorNormalisation) {
  const std::vector<int> doc = {5, 5, 7, 9};
  const std::vector<int> selected = {5, 7};
  const auto raw = TfIdf::CountVector(doc, selected, /*normalize=*/false);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[0], 2.0f);
  EXPECT_EQ(raw[1], 1.0f);
  const auto unit = TfIdf::CountVector(doc, selected, /*normalize=*/true);
  EXPECT_NEAR(unit[0] * unit[0] + unit[1] * unit[1], 1.0f, 1e-5f);
  // A doc with no selected words yields the zero vector, not NaN.
  const auto zero = TfIdf::CountVector({9}, selected);
  EXPECT_EQ(zero[0], 0.0f);
  EXPECT_EQ(zero[1], 0.0f);
}

}  // namespace
}  // namespace kddn::text
