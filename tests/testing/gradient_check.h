#ifndef KDDN_TESTS_TESTING_GRADIENT_CHECK_H_
#define KDDN_TESTS_TESTING_GRADIENT_CHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/node.h"
#include "gtest/gtest.h"

namespace kddn::testing {

/// Verifies reverse-mode gradients against central finite differences.
///
/// `build` must construct a fresh graph over the given persistent leaves and
/// return a scalar loss node; it is re-invoked after each perturbation, so it
/// must be deterministic (no dropout in training mode).
inline void ExpectGradientsMatchFiniteDifference(
    const std::function<ag::NodePtr()>& build,
    const std::vector<ag::NodePtr>& leaves, float epsilon = 1e-3f,
    float tolerance = 2e-2f) {
  for (const ag::NodePtr& leaf : leaves) {
    leaf->ZeroGrad();
  }
  ag::NodePtr loss = build();
  ag::Backward(loss);

  for (size_t l = 0; l < leaves.size(); ++l) {
    const ag::NodePtr& leaf = leaves[l];
    Tensor analytic = leaf->grad();
    Tensor& value = leaf->mutable_value();
    for (int64_t i = 0; i < value.size(); ++i) {
      const float original = value[i];
      value[i] = original + epsilon;
      const float plus = ag::ScalarValue(build());
      value[i] = original - epsilon;
      const float minus = ag::ScalarValue(build());
      value[i] = original;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      const float got = analytic[i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tolerance * scale)
          << "leaf " << l << " (" << leaf->name() << ") element " << i;
    }
  }
}

}  // namespace kddn::testing

#endif  // KDDN_TESTS_TESTING_GRADIENT_CHECK_H_
