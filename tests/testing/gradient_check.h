#ifndef KDDN_TESTS_TESTING_GRADIENT_CHECK_H_
#define KDDN_TESTS_TESTING_GRADIENT_CHECK_H_

#include <functional>
#include <vector>

#include "testing/grad_check.h"

namespace kddn::testing {

/// Legacy entry point, kept for the older element-wise tests; new tests
/// should use ExpectGradCheck / CheckGradients from testing/grad_check.h
/// directly. The (epsilon, tolerance) pair maps onto GradCheckOptions with
/// the historical scale floor of 1.
inline void ExpectGradientsMatchFiniteDifference(
    const std::function<ag::NodePtr()>& build,
    const std::vector<ag::NodePtr>& leaves, float epsilon = 1e-3f,
    float tolerance = 2e-2f) {
  GradCheckOptions options;
  options.epsilon = epsilon;
  options.rel_tolerance = tolerance;
  options.denom_floor = 1.0f;
  ExpectGradCheck(build, leaves, options);
}

}  // namespace kddn::testing

#endif  // KDDN_TESTS_TESTING_GRADIENT_CHECK_H_
