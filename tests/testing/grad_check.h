#ifndef KDDN_TESTS_TESTING_GRAD_CHECK_H_
#define KDDN_TESTS_TESTING_GRAD_CHECK_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "autograd/node.h"
#include "gtest/gtest.h"

namespace kddn::testing {

/// Knobs for the central finite-difference gradient checker.
struct GradCheckOptions {
  /// Central-difference step. Larger steps reduce float32 cancellation noise
  /// at the cost of O(eps^2) curvature error; 1e-2 is a good default for
  /// losses of magnitude ~1.
  float epsilon = 1e-2f;
  /// Maximum allowed relative error |analytic - numeric| / denom, where
  /// denom = max(denom_floor, |analytic|, |numeric|). The floor keeps the
  /// metric absolute for near-zero gradients, where the relative form would
  /// amplify float32 noise.
  float rel_tolerance = 1e-3f;
  float denom_floor = 1.0f;
};

/// Outcome of a gradient check: the worst relative error observed and where.
struct GradCheckResult {
  float max_rel_error = 0.0f;
  int64_t elements_checked = 0;
  std::string worst_location;
};

/// Compares reverse-mode gradients of a scalar-valued graph against central
/// finite differences, perturbing every element of every leaf in `leaves`.
///
/// `build` must construct a fresh graph over the given persistent leaves and
/// return a scalar loss node; it is re-invoked after each perturbation, so it
/// must be deterministic (no training-mode dropout).
inline GradCheckResult CheckGradients(
    const std::function<ag::NodePtr()>& build,
    const std::vector<ag::NodePtr>& leaves,
    const GradCheckOptions& options = {}) {
  for (const ag::NodePtr& leaf : leaves) {
    leaf->ZeroGrad();
  }
  ag::Backward(build());

  GradCheckResult result;
  for (size_t l = 0; l < leaves.size(); ++l) {
    const ag::NodePtr& leaf = leaves[l];
    const Tensor analytic = leaf->grad();  // Copy: FD reruns perturb values.
    Tensor& value = leaf->mutable_value();
    for (int64_t i = 0; i < value.size(); ++i) {
      const float original = value[i];
      value[i] = original + options.epsilon;
      const float plus = ag::ScalarValue(build());
      value[i] = original - options.epsilon;
      const float minus = ag::ScalarValue(build());
      value[i] = original;
      const float numeric = (plus - minus) / (2.0f * options.epsilon);
      const float got = analytic[i];
      const float denom = std::max(
          {options.denom_floor, std::fabs(numeric), std::fabs(got)});
      const float rel_error = std::fabs(got - numeric) / denom;
      ++result.elements_checked;
      if (rel_error > result.max_rel_error) {
        result.max_rel_error = rel_error;
        result.worst_location = "leaf " + std::to_string(l) + " (" +
                                leaf->name() + ") element " +
                                std::to_string(i) + ": analytic " +
                                std::to_string(got) + " vs numeric " +
                                std::to_string(numeric);
      }
    }
  }
  return result;
}

/// gtest wrapper: fails if any element's relative error exceeds
/// options.rel_tolerance.
inline void ExpectGradCheck(const std::function<ag::NodePtr()>& build,
                            const std::vector<ag::NodePtr>& leaves,
                            const GradCheckOptions& options = {}) {
  const GradCheckResult result = CheckGradients(build, leaves, options);
  EXPECT_GT(result.elements_checked, 0);
  EXPECT_LE(result.max_rel_error, options.rel_tolerance)
      << "worst element: " << result.worst_location;
}

}  // namespace kddn::testing

#endif  // KDDN_TESTS_TESTING_GRAD_CHECK_H_
