#include "viz/tsne.h"

#include <cmath>

#include "common/check.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"

namespace kddn::viz {
namespace {

/// Two well-separated Gaussian blobs in 10-D.
Tensor TwoBlobs(int per_class, std::vector<int>* labels, Rng* rng) {
  Tensor points({2 * per_class, 10});
  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 0 : 1;
    labels->push_back(label);
    for (int k = 0; k < 10; ++k) {
      points.at(i, k) =
          static_cast<float>(rng->Normal(label == 0 ? -2.0 : 2.0, 0.4));
    }
  }
  return points;
}

TEST(TsneTest, OutputShapeAndCentering) {
  Rng rng(1);
  std::vector<int> labels;
  Tensor points = TwoBlobs(20, &labels, &rng);
  TsneOptions options;
  options.iterations = 150;
  options.perplexity = 10.0;
  Tensor embedding = Tsne(points, options);
  ASSERT_EQ(embedding.rank(), 2);
  EXPECT_EQ(embedding.dim(0), 40);
  EXPECT_EQ(embedding.dim(1), 2);
  // Embedding is recentered each iteration.
  double mean0 = 0.0, mean1 = 0.0;
  for (int i = 0; i < 40; ++i) {
    mean0 += embedding.at(i, 0);
    mean1 += embedding.at(i, 1);
  }
  EXPECT_NEAR(mean0 / 40.0, 0.0, 1e-3);
  EXPECT_NEAR(mean1 / 40.0, 0.0, 1e-3);
  for (int64_t i = 0; i < embedding.size(); ++i) {
    EXPECT_FALSE(std::isnan(embedding[i]));
  }
}

TEST(TsneTest, SeparatesWellSeparatedBlobs) {
  Rng rng(2);
  std::vector<int> labels;
  Tensor points = TwoBlobs(30, &labels, &rng);
  TsneOptions options;
  options.iterations = 250;
  options.perplexity = 12.0;
  Tensor embedding = Tsne(points, options);
  EXPECT_GT(ClassSeparation(embedding, labels), 0.4);
}

TEST(TsneTest, DeterministicInSeed) {
  Rng rng(3);
  std::vector<int> labels;
  Tensor points = TwoBlobs(10, &labels, &rng);
  TsneOptions options;
  options.iterations = 60;
  options.perplexity = 6.0;
  Tensor a = Tsne(points, options);
  Tensor b = Tsne(points, options);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-9f);
}

TEST(TsneTest, InvalidInputsRejected) {
  Tensor tiny({2, 3});
  EXPECT_THROW(Tsne(tiny), KddnError);  // Too few points.
  Tensor points({50, 3});
  TsneOptions bad;
  bad.perplexity = 100.0;  // >= n.
  EXPECT_THROW(Tsne(points, bad), KddnError);
}

TEST(ClassSeparationTest, SignMatchesGeometry) {
  // Perfectly separated 1-D-ish layout.
  Tensor good({4, 2});
  good.at(0, 0) = -5;
  good.at(1, 0) = -5.5;
  good.at(2, 0) = 5;
  good.at(3, 0) = 5.5;
  EXPECT_GT(ClassSeparation(good, {0, 0, 1, 1}), 0.5);

  // Interleaved layout scores poorly.
  Tensor bad({4, 2});
  bad.at(0, 0) = 0;
  bad.at(1, 0) = 1;
  bad.at(2, 0) = 0.5;
  bad.at(3, 0) = 1.5;
  EXPECT_LT(ClassSeparation(bad, {0, 1, 0, 1}),
            ClassSeparation(good, {0, 0, 1, 1}));
}

TEST(ClassSeparationTest, RequiresBothClasses) {
  Tensor points({3, 2});
  EXPECT_THROW(ClassSeparation(points, {0, 0, 0}), KddnError);
  EXPECT_THROW(ClassSeparation(points, {0, 1}), KddnError);  // Size mismatch.
}

}  // namespace
}  // namespace kddn::viz
