#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace kddn {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(KDDN_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(KDDN_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(KDDN_CHECK_LT(1, 2));
}

TEST(CheckTest, FailingCheckThrowsKddnError) {
  EXPECT_THROW(KDDN_CHECK(false), KddnError);
  EXPECT_THROW(KDDN_CHECK_EQ(1, 2), KddnError);
  EXPECT_THROW(KDDN_CHECK_GT(1, 2), KddnError);
}

TEST(CheckTest, MessagePayloadIsIncluded) {
  try {
    KDDN_CHECK(false) << "custom context " << 42;
    FAIL() << "expected throw";
  } catch (const KddnError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
  }
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRejectsNonPositive) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(0), KddnError);
  EXPECT_THROW(rng.UniformInt(-3), KddnError);
}

TEST(RngTest, NormalMomentsAreSane) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, CategoricalRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.Categorical({}), KddnError);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), KddnError);
  EXPECT_THROW(rng.Categorical({1.0, -1.0}), KddnError);
}

TEST(RngTest, PoissonMean) {
  Rng rng(31);
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) {
    total += rng.Poisson(4.0);
  }
  EXPECT_NEAR(total / 20000.0, 4.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Split();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Cardiac TAMPONADE 9"), "cardiac tamponade 9");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  const auto pieces = Split("a,,b, c", ", ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitEmptyInput) {
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  note text \t\n"), "note text");
  EXPECT_EQ(Strip("\t \n"), "");
  EXPECT_EQ(Strip("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("cardiac tamponade", "cardiac"));
  EXPECT_FALSE(StartsWith("cardiac", "cardiac tamponade"));
  EXPECT_TRUE(EndsWith("pleural effusion", "effusion"));
  EXPECT_FALSE(EndsWith("effusion", "pleural effusion"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.8725, 3), "0.873");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

}  // namespace
}  // namespace kddn
