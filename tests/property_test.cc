// Parameterized property suites: invariants swept over grids of shapes,
// sizes, and the whole knowledge base, using TEST_P /
// INSTANTIATE_TEST_SUITE_P.
#include <cmath>
#include <string>
#include <tuple>

#include "autograd/ops.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "nn/layers.h"
#include "tensor/tensor_ops.h"
#include "testing/gradient_check.h"
#include "text/lemmatizer.h"
#include "viz/tsne.h"

namespace kddn {
namespace {

// ---------------------------------------------------------------------------
// MatMul family: (A B)ᵀ == Bᵀ Aᵀ and the fused variants agree with the
// explicit-transpose forms, over a grid of shapes.
// ---------------------------------------------------------------------------
class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, FusedVariantsMatchExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  Tensor a = RandomNormal({m, k}, 0, 1, &rng);
  Tensor b = RandomNormal({k, n}, 0, 1, &rng);
  Tensor ab = MatMul(a, b);
  EXPECT_LT(MaxAbsDiff(Transpose(ab), MatMul(Transpose(b), Transpose(a))),
            1e-4f);
  EXPECT_LT(MaxAbsDiff(MatMulAtB(Transpose(a), b), ab), 1e-4f);
  EXPECT_LT(MaxAbsDiff(MatMulABt(a, Transpose(b)), ab), 1e-4f);
}

TEST_P(MatMulPropertyTest, GradientsCheckNumerically) {
  const auto [m, k, n] = GetParam();
  if (m * k * n > 200) {
    GTEST_SKIP() << "finite differences only on the small shapes";
  }
  Rng rng(3);
  ag::NodePtr a =
      ag::Node::Leaf(RandomNormal({m, k}, 0, 1, &rng), true, "a");
  ag::NodePtr b =
      ag::Node::Leaf(RandomNormal({k, n}, 0, 1, &rng), true, "b");
  testing::ExpectGradientsMatchFiniteDifference(
      [&] {
        ag::NodePtr p = ag::MatMul(a, b);
        return ag::MeanAll(ag::Mul(p, p));
      },
      {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(4, 8, 2),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(31, 7, 13)));

// ---------------------------------------------------------------------------
// Conv1dBank: output size and gradient flow over (widths, filters, tokens),
// including inputs shorter than the largest filter.
// ---------------------------------------------------------------------------
class ConvBankPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvBankPropertyTest, OutputShapeAndFiniteness) {
  const auto [num_widths, filters, tokens] = GetParam();
  std::vector<int> widths;
  for (int w = 1; w <= num_widths; ++w) {
    widths.push_back(w);
  }
  Rng rng(11);
  nn::ParameterSet params;
  nn::Conv1dBank bank(&params, "conv", 6, filters, widths, &rng);
  EXPECT_EQ(bank.output_dim(), filters * num_widths);
  ag::NodePtr x =
      ag::Node::Leaf(RandomNormal({tokens, 6}, 0, 1, &rng), true, "x");
  ag::NodePtr out = bank.Forward(x);
  ASSERT_EQ(out->value().rank(), 1);
  ASSERT_EQ(out->value().dim(0), bank.output_dim());
  for (int i = 0; i < out->value().dim(0); ++i) {
    EXPECT_FALSE(std::isnan(out->value().at(i)));
  }
  // Gradient reaches the input through ReLU + max-pool whenever any pooled
  // activation survived the ReLU (with one random filter, all activations
  // can legitimately be dead).
  ag::Backward(ag::SumAll(out));
  if (MaxValue(out->value()) > 0.0f) {
    EXPECT_GT(SquaredNorm(x->grad()) + SquaredNorm(params.all()[0]->grad()),
              0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvBankPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),   // Width sets {1}..{1,2,3}
                       ::testing::Values(1, 4),      // Filters.
                       ::testing::Values(1, 2, 5, 40)));  // Tokens.

// ---------------------------------------------------------------------------
// ATTI: rows of the attention map are distributions and the output lies in
// the convex hull of the key rows (coordinate-wise bounds), for any shapes.
// ---------------------------------------------------------------------------
class AttiPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AttiPropertyTest, OutputsAreConvexCombinations) {
  const auto [queries, keys] = GetParam();
  Rng rng(13);
  ag::NodePtr q =
      ag::Node::Leaf(RandomNormal({queries, 5}, 0, 2, &rng), false, "q");
  ag::NodePtr kv =
      ag::Node::Leaf(RandomNormal({keys, 5}, 0, 2, &rng), false, "kv");
  nn::AttiResult atti = nn::Atti(q, kv);
  for (int i = 0; i < queries; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < keys; ++j) {
      const float w = atti.weights->value().at(i, j);
      EXPECT_GE(w, 0.0f);
      row_sum += w;
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-4f);
  }
  for (int dim = 0; dim < 5; ++dim) {
    float lo = kv->value().at(0, dim), hi = lo;
    for (int j = 1; j < keys; ++j) {
      lo = std::min(lo, kv->value().at(j, dim));
      hi = std::max(hi, kv->value().at(j, dim));
    }
    for (int i = 0; i < queries; ++i) {
      EXPECT_GE(atti.output->value().at(i, dim), lo - 1e-4f);
      EXPECT_LE(atti.output->value().at(i, dim), hi + 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AttiPropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 17),
                                            ::testing::Values(1, 2, 9)));

// ---------------------------------------------------------------------------
// ROC AUC properties over (size, prevalence): perfect separation gives 1,
// label inversion gives 1-AUC, adding a constant changes nothing.
// ---------------------------------------------------------------------------
class AucPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AucPropertyTest, SeparationInversionAndShiftInvariance) {
  const auto [n, prevalence] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 31 + prevalence * 1000));
  std::vector<float> scores;
  std::vector<int> labels;
  int positives = 0;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(prevalence) ? 1 : 0;
    positives += label;
    labels.push_back(label);
    scores.push_back(static_cast<float>(rng.Normal(label * 2.0, 1.0)));
  }
  if (positives == 0 || positives == n) {
    GTEST_SKIP() << "single-class draw";
  }
  const double auc = eval::RocAuc(scores, labels);
  EXPECT_GT(auc, 0.5);

  // Perfectly separated version.
  std::vector<float> perfect;
  for (int label : labels) {
    perfect.push_back(label == 1 ? 1.0f : 0.0f);
  }
  EXPECT_DOUBLE_EQ(eval::RocAuc(perfect, labels), 1.0);

  // Inverting labels flips the AUC.
  std::vector<int> inverted;
  for (int label : labels) {
    inverted.push_back(1 - label);
  }
  EXPECT_NEAR(eval::RocAuc(scores, inverted), 1.0 - auc, 1e-9);

  // Shifting scores is a monotone transform.
  std::vector<float> shifted;
  for (float s : scores) {
    shifted.push_back(s + 100.0f);
  }
  EXPECT_NEAR(eval::RocAuc(shifted, labels), auc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, AucPropertyTest,
                         ::testing::Combine(::testing::Values(10, 100, 1000),
                                            ::testing::Values(0.1, 0.3,
                                                              0.5)));

// The O(n²) definition RocAuc must reproduce: over all (positive, negative)
// pairs, count 1 for positive > negative and 1/2 for a tie.
double PairwiseAuc(const std::vector<float>& scores,
                   const std::vector<int>& labels) {
  double wins = 0.0;
  int64_t pairs = 0;
  for (size_t p = 0; p < labels.size(); ++p) {
    if (labels[p] != 1) {
      continue;
    }
    for (size_t n = 0; n < labels.size(); ++n) {
      if (labels[n] != 0) {
        continue;
      }
      ++pairs;
      if (scores[p] > scores[n]) {
        wins += 1.0;
      } else if (scores[p] == scores[n]) {
        wins += 0.5;
      }
    }
  }
  return pairs > 0 ? wins / static_cast<double>(pairs) : 0.5;
}

TEST_P(AucPropertyTest, MatchesPairwiseDefinitionWithHeavyTies) {
  const auto [n, prevalence] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 131 + prevalence * 7919));
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    labels.push_back(rng.Bernoulli(prevalence) ? 1 : 0);
    // Quantized scores force many exact ties across and within classes, the
    // regime where midrank handling matters.
    const double raw = rng.Normal(labels.back() * 1.0, 1.0);
    scores.push_back(static_cast<float>(std::round(raw * 2.0) / 2.0));
  }
  const double pairwise = PairwiseAuc(scores, labels);
  EXPECT_NEAR(eval::RocAuc(scores, labels), pairwise, 1e-9)
      << "midrank AUC diverged from the pairwise definition";
}

TEST(AucDegenerateTest, SingleClassReturnsChance) {
  // No (positive, negative) pair exists, so the pairwise definition is
  // vacuous; RocAuc documents 0.5 (chance) for this case, matching
  // core::Trainer::EvaluateAuc on one-class splits.
  EXPECT_DOUBLE_EQ(eval::RocAuc({0.2f, 0.9f, 0.4f}, {1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(eval::RocAuc({0.2f, 0.9f, 0.4f}, {0, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(eval::RocAuc({0.7f}, {0}), 0.5);
}

TEST(AucDegenerateTest, AllTiedScoresAreChance) {
  EXPECT_DOUBLE_EQ(eval::RocAuc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

// ---------------------------------------------------------------------------
// Knowledge-base coverage: every concept's preferred name, embedded in a
// sentence, is recovered by the extractor with the right CUI and maximal
// confidence, and every alias maps to the same CUI.
// ---------------------------------------------------------------------------
class KbCoverageTest : public ::testing::TestWithParam<int> {
 protected:
  static const kb::KnowledgeBase& Kb() {
    static const kb::KnowledgeBase* kb =
        new kb::KnowledgeBase(kb::KnowledgeBase::BuildDefault());
    return *kb;
  }
  static const kb::ConceptExtractor& Extractor() {
    static const kb::ConceptExtractor* extractor =
        new kb::ConceptExtractor(&Kb());
    return *extractor;
  }
};

TEST_P(KbCoverageTest, PreferredNameAndAliasesExtract) {
  const kb::Concept& entry = Kb().concepts()[GetParam()];
  kb::ExtractionOptions options;
  options.filter_general = false;  // Cover general concepts too.

  std::vector<std::string> forms = entry.aliases;
  forms.push_back(entry.preferred_name);
  for (const std::string& form : forms) {
    const std::string sentence = "assessment shows " + form + " today";
    const auto mentions = Extractor().Extract(sentence, options);
    bool found = false;
    for (const auto& mention : mentions) {
      if (mention.cui == entry.cui) {
        found = true;
        EXPECT_GE(mention.score, 900.0f);
      }
    }
    EXPECT_TRUE(found) << entry.cui << " not found via \"" << form << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConcepts, KbCoverageTest,
    ::testing::Range(0, kb::KnowledgeBase::BuildDefault().size()));

// ---------------------------------------------------------------------------
// Lemmatizer: idempotence (lemma(lemma(w)) == lemma(w)) over clinical
// vocabulary and status words.
// ---------------------------------------------------------------------------
class LemmatizerPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LemmatizerPropertyTest, Idempotent) {
  text::Lemmatizer lemmatizer;
  const std::string once = lemmatizer.Lemma(GetParam());
  EXPECT_EQ(lemmatizer.Lemma(once), once) << "from " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    ClinicalWords, LemmatizerPropertyTest,
    ::testing::Values("effusions", "worsening", "improved", "increased",
                      "coughs", "diagnoses", "emboli", "resolving",
                      "metastases", "therapies", "stopped", "lungs",
                      "masses", "was", "children", "tachycardia",
                      "intubated", "decreasing", "transfusions", "status"));

// ---------------------------------------------------------------------------
// t-SNE: finite output of the right shape for a sweep of sizes/perplexities.
// ---------------------------------------------------------------------------
class TsnePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TsnePropertyTest, FiniteAndCorrectShape) {
  const auto [n, perplexity] = GetParam();
  Rng rng(17);
  Tensor points = RandomNormal({n, 8}, 0, 1, &rng);
  viz::TsneOptions options;
  options.iterations = 40;
  options.perplexity = perplexity;
  Tensor out = viz::Tsne(points, options);
  ASSERT_EQ(out.dim(0), n);
  ASSERT_EQ(out.dim(1), 2);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TsnePropertyTest,
                         ::testing::Combine(::testing::Values(8, 25, 60),
                                            ::testing::Values(2.0, 5.0)));

// ---------------------------------------------------------------------------
// Dropout preserves expectation for a sweep of rates.
// ---------------------------------------------------------------------------
class DropoutPropertyTest : public ::testing::TestWithParam<float> {};

TEST_P(DropoutPropertyTest, InvertedScalingKeepsMean) {
  const float rate = GetParam();
  Rng rng(19);
  ag::NodePtr x = ag::Node::Leaf(Tensor::Full({120, 120}, 1.0f), false, "x");
  ag::NodePtr y = ag::Dropout(x, rate, /*training=*/true, &rng);
  EXPECT_NEAR(Mean(y->value()), 1.0f, 0.06f) << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutPropertyTest,
                         ::testing::Values(0.1f, 0.25f, 0.5f, 0.75f));

}  // namespace
}  // namespace kddn
