// Observability tests (DESIGN.md §12): the trace layer's ring-buffer
// semantics (nesting, thread attribution, wraparound accounting), the
// Chrome-trace exporter's matched B/E pairs, the allocation tracker's
// live/peak units, and the two invariants the rest of the repo rides on —
// a warm frozen forward / cache-warm ScoreNote performs zero tensor
// allocations, and tracing never perturbs training determinism. The
// concurrent-span test drives 4 pool threads, making this a sanitizer
// target (ctest -L sanitize).
#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/knowledge_base.h"
#include "models/bk_ddn.h"
#include "serve/frozen_model.h"
#include "serve/inference_engine.h"
#include "serve/json_util.h"
#include "serve/load_gen.h"
#include "synth/cohort.h"
#include "tensor/tensor.h"
#include "tensor/tensor_pool.h"

namespace kddn {
namespace {

/// Leaves tracing disabled and the rings empty no matter how a test exits,
/// so span state never bleeds between tests in this binary.
struct TraceGuard {
  TraceGuard() {
    trace::SetEnabled(false);
    trace::Clear();
  }
  ~TraceGuard() {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

/// Sum of events still resident across all thread snapshots.
size_t TotalEvents(const std::vector<trace::ThreadSnapshot>& snapshot) {
  size_t total = 0;
  for (const trace::ThreadSnapshot& thread : snapshot) {
    total += thread.events.size();
  }
  return total;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceGuard guard;
  for (int i = 0; i < 100; ++i) {
    KDDN_TRACE_SPAN("disabled.span");
  }
  EXPECT_EQ(TotalEvents(trace::Snapshot()), 0u);
}

TEST(TraceTest, NestedSpansRecordContainedIntervalsOnOwnThread) {
  TraceGuard guard;
  trace::SetEnabled(true);
  {
    KDDN_TRACE_SPAN("outer");
    KDDN_TRACE_SPAN("inner");
  }
  trace::SetEnabled(false);

  const std::vector<trace::ThreadSnapshot> snapshot = trace::Snapshot();
  ASSERT_EQ(TotalEvents(snapshot), 2u);
  const int my_tid = trace::internal::CurrentThreadId();
  const trace::ThreadSnapshot* mine = nullptr;
  for (const trace::ThreadSnapshot& thread : snapshot) {
    if (thread.tid == my_tid) {
      mine = &thread;
    } else {
      EXPECT_TRUE(thread.events.empty())
          << "span attributed to foreign thread " << thread.tid;
    }
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 2u);
  // Rings hold completion order: the inner span closes first.
  const trace::SpanEvent& inner = mine->events[0];
  const trace::SpanEvent& outer = mine->events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.begin_ns, inner.end_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  TraceGuard guard;
  trace::SetEnabled(true);
  constexpr uint64_t kOverflow = 123;
  const uint64_t total = trace::internal::kRingCapacity + kOverflow;
  for (uint64_t i = 0; i < total; ++i) {
    KDDN_TRACE_SPAN("wrap.span");
  }
  trace::SetEnabled(false);

  const int my_tid = trace::internal::CurrentThreadId();
  for (const trace::ThreadSnapshot& thread : trace::Snapshot()) {
    if (thread.tid != my_tid) {
      continue;
    }
    EXPECT_EQ(thread.recorded, total);
    EXPECT_EQ(thread.events.size(), trace::internal::kRingCapacity);
    EXPECT_EQ(thread.dropped, kOverflow);
    // Oldest-first readout: timestamps never move backwards.
    for (size_t i = 1; i < thread.events.size(); ++i) {
      EXPECT_LE(thread.events[i - 1].begin_ns, thread.events[i].begin_ns);
    }
    return;
  }
  FAIL() << "no snapshot for the recording thread";
}

TEST(TraceTest, AggregateByNameRollsUpCountTotalMax) {
  TraceGuard guard;
  trace::SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    KDDN_TRACE_SPAN("agg.a");
  }
  {
    KDDN_TRACE_SPAN("agg.b");
  }
  trace::SetEnabled(false);

  const std::map<std::string, trace::SpanStats> stats =
      trace::AggregateByName(trace::Snapshot());
  ASSERT_EQ(stats.count("agg.a"), 1u);
  ASSERT_EQ(stats.count("agg.b"), 1u);
  EXPECT_EQ(stats.at("agg.a").count, 5u);
  EXPECT_EQ(stats.at("agg.b").count, 1u);
  EXPECT_GE(stats.at("agg.a").total_ns, stats.at("agg.a").max_ns);
  EXPECT_GE(stats.at("agg.a").max_ns, 0u);
}

TEST(TraceTest, ChromeJsonEmitsParseableMatchedBeginEndPairs) {
  TraceGuard guard;
  trace::SetEnabled(true);
  {
    KDDN_TRACE_SPAN("json.outer");
    for (int i = 0; i < 3; ++i) {
      KDDN_TRACE_SPAN("json.inner");
    }
  }
  trace::SetEnabled(false);

  const std::string json = trace::ToChromeJson(trace::Snapshot());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 60);
  EXPECT_NE(json.find("]}"), std::string::npos);

  // The exporter writes one flat event object per line, so the HTTP layer's
  // flat-object parser can check each one without a full JSON library.
  std::map<std::string, int> balance;  // name -> opens minus closes
  int events = 0;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t end = json.find('\n', pos);
    if (end == std::string::npos) {
      end = json.size();
    }
    std::string line = json.substr(pos, end - pos);
    pos = end + 1;
    const size_t open = line.find('{');
    if (open == std::string::npos || line.find("\"name\"") == std::string::npos) {
      continue;
    }
    const size_t close = line.rfind('}');
    ASSERT_NE(close, std::string::npos) << line;
    std::map<std::string, serve::JsonValue> fields;
    std::string error;
    ASSERT_TRUE(serve::ParseFlatJsonObject(
        line.substr(open, close - open + 1), &fields, &error))
        << error << " in: " << line;
    ++events;
    ASSERT_EQ(fields.count("name"), 1u);
    ASSERT_EQ(fields.count("ph"), 1u);
    ASSERT_EQ(fields.count("ts"), 1u);
    ASSERT_EQ(fields.count("tid"), 1u);
    EXPECT_EQ(fields["cat"].string_value, "kddn");
    EXPECT_GE(fields["ts"].number_value, 0.0);
    const std::string& ph = fields["ph"].string_value;
    ASSERT_TRUE(ph == "B" || ph == "E") << ph;
    balance[fields["name"].string_value] += ph == "B" ? 1 : -1;
  }
  EXPECT_EQ(events, 8);  // 4 spans, one B and one E each.
  for (const auto& [name, open_minus_close] : balance) {
    EXPECT_EQ(open_minus_close, 0) << "unmatched B/E for " << name;
  }
}

TEST(TraceTest, ConcurrentSpansFromPoolThreadsAllLand) {
  TraceGuard guard;
  trace::SetEnabled(true);
  constexpr int64_t kItems = 512;
  {
    ThreadPool pool(4);
    pool.ParallelFor(kItems, [](int64_t i) {
      KDDN_TRACE_SPAN("pool.item");
      if (i % 64 == 0) {
        std::this_thread::yield();
      }
    });
  }
  trace::SetEnabled(false);

  const std::vector<trace::ThreadSnapshot> snapshot = trace::Snapshot();
  std::set<int> tids;
  uint64_t recorded = 0;
  for (const trace::ThreadSnapshot& thread : snapshot) {
    EXPECT_TRUE(tids.insert(thread.tid).second)
        << "duplicate tid " << thread.tid << " in snapshot";
    recorded += thread.recorded;
    EXPECT_EQ(thread.dropped, 0u);
    for (const trace::SpanEvent& event : thread.events) {
      EXPECT_STREQ(event.name, "pool.item");
      EXPECT_LE(event.begin_ns, event.end_ns);
    }
  }
  EXPECT_EQ(recorded, static_cast<uint64_t>(kItems));
}

TEST(AllocTrackerTest, ScopeCountsTensorLifecycleInBytes) {
  const size_t bytes = 20 * sizeof(float);
  alloc::AllocScope scope("test.lifecycle");
  {
    Tensor t({4, 5});
    EXPECT_EQ(scope.allocations(), 1u);
    EXPECT_GE(scope.allocated_bytes(), bytes);
    EXPECT_GE(scope.live_delta(), static_cast<int64_t>(bytes));
  }
  EXPECT_EQ(scope.allocations(), 1u);
  EXPECT_EQ(scope.frees(), 1u);
  EXPECT_EQ(scope.live_delta(), 0);
}

TEST(AllocTrackerTest, CopyMoveAndPeakAccounting) {
  const alloc::Totals before = alloc::GlobalTotals();
  {
    alloc::AllocScope scope("test.copy_move");
    Tensor a({8, 8});
    Tensor b = a;  // Copy allocates.
    EXPECT_EQ(scope.allocations(), 2u);
    Tensor c = std::move(a);  // Move transfers — no event.
    EXPECT_EQ(scope.allocations(), 2u);
    EXPECT_EQ(scope.frees(), 0u);
    b = std::move(c);  // Move-assign frees b's old storage.
    EXPECT_EQ(scope.frees(), 1u);
  }
  const alloc::Totals after = alloc::GlobalTotals();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_GE(after.peak_bytes, before.peak_bytes);
  EXPECT_GE(after.peak_bytes, after.live_bytes);
}

TEST(AllocTrackerTest, WarmTensorPoolAcquireIsAllocationFree) {
  TensorPool pool;
  // Warm: the first acquire grows fresh storage, recycling it caches it.
  pool.Recycle(pool.Acquire({16, 3}));
  {
    alloc::AllocScope scope("test.pool_warm");
    Tensor t = pool.Acquire({16, 3});
    EXPECT_EQ(scope.allocations(), 0u)
        << "warm pool acquire touched the allocator";
    pool.Recycle(std::move(t));
    EXPECT_EQ(scope.frees(), 0u);
  }
}

/// Shared serving fixture: one small trained BK-DDN frozen for the
/// zero-allocation and determinism tests. Built once for the binary.
class TraceServingTest : public ::testing::Test {
 protected:
  struct Assets {
    kb::KnowledgeBase kb = kb::KnowledgeBase::BuildDefault();
    kb::ConceptExtractor extractor{&kb};
    data::MortalityDataset dataset;
    models::ModelConfig model_config;
    data::DatasetOptions data_options;
  };

  static Assets* assets() {
    static Assets* a = [] {
      auto* built = new Assets();
      synth::CohortConfig cohort_config;
      cohort_config.num_patients = 60;
      cohort_config.seed = 91;
      const synth::Cohort cohort =
          synth::Cohort::Generate(cohort_config, built->kb);
      built->data_options.max_words = 48;
      built->data_options.max_concepts = 24;
      built->dataset = data::MortalityDataset::Build(
          cohort, built->extractor, built->data_options);
      built->model_config.word_vocab_size =
          built->dataset.word_vocab().size();
      built->model_config.concept_vocab_size =
          built->dataset.concept_vocab().size();
      built->model_config.embedding_dim = 6;
      built->model_config.num_filters = 4;
      built->model_config.seed = 17;
      return built;
    }();
    return a;
  }

  static core::TrainOptions SmallTrainOptions() {
    core::TrainOptions options;
    options.epochs = 1;
    options.batch_size = 16;
    options.seed = 13;
    options.num_threads = 1;
    return options;
  }
};

TEST_F(TraceServingTest, WarmFrozenForwardPerformsZeroTensorAllocations) {
  TraceGuard guard;
  Assets* a = assets();
  models::BkDdn model(a->model_config);
  core::Trainer trainer(SmallTrainOptions());
  trainer.Train(&model, a->dataset.train(), a->dataset.validation(),
                synth::Horizon::kInHospital);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);

  // Warm pass: grows every workspace buffer to the split's high-water shape.
  serve::FrozenModel::Workspace ws;
  float warm_sink = 0.0f;
  for (const data::Example& example : a->dataset.test()) {
    warm_sink += frozen.ScorePositive(example, &ws);
  }
  ASSERT_GT(a->dataset.test().size(), 1u);

  // Measured passes over mixed document lengths: zero tensor allocations.
  float sink = 0.0f;
  alloc::AllocScope scope("test.frozen_forward");
  for (int rep = 0; rep < 2; ++rep) {
    for (const data::Example& example : a->dataset.test()) {
      sink += frozen.ScorePositive(example, &ws);
    }
  }
  EXPECT_EQ(scope.allocations(), 0u)
      << "warm FrozenModel::Forward allocated tensor storage";
  EXPECT_EQ(scope.live_delta(), 0);
  EXPECT_EQ(sink, 2.0f * warm_sink);  // Warm pass already bitwise-converged.
}

TEST_F(TraceServingTest, CacheWarmScoreNotePerformsZeroTensorAllocations) {
  TraceGuard guard;
  Assets* a = assets();
  models::BkDdn model(a->model_config);
  core::Trainer trainer(SmallTrainOptions());
  trainer.Train(&model, a->dataset.train(), a->dataset.validation(),
                synth::Horizon::kInHospital);
  const serve::FrozenModel frozen = serve::FrozenModel::Freeze(model);

  serve::NotePipeline pipeline;
  pipeline.word_vocab = &a->dataset.word_vocab();
  pipeline.concept_vocab = &a->dataset.concept_vocab();
  pipeline.extractor = &a->extractor;
  pipeline.options = a->data_options;
  serve::EngineOptions options;
  options.flush_deadline_ms = 0;  // Score each request immediately.
  serve::InferenceEngine engine(&frozen, pipeline, options);

  const std::vector<std::string> notes = serve::BuildNotePool(7, 4);
  // Warm pass: fills the concept cache and the batcher thread's workspace.
  std::vector<float> warm;
  for (const std::string& note : notes) {
    warm.push_back(engine.ScoreNote(note));
  }

  alloc::AllocScope scope("test.score_note");
  for (size_t i = 0; i < notes.size(); ++i) {
    EXPECT_EQ(engine.ScoreNote(notes[i]), warm[i]);  // Bitwise repeatable.
  }
  EXPECT_EQ(scope.allocations(), 0u)
      << "cache-warm ScoreNote allocated tensor storage";
}

TEST_F(TraceServingTest, TracingDoesNotPerturbTrainingDeterminism) {
  TraceGuard guard;
  Assets* a = assets();

  struct Run {
    std::vector<Tensor> params;
    std::map<std::string, trace::SpanStats> stages;
    uint64_t dropped = 0;
  };
  const auto train_traced = [&] {
    trace::Clear();
    trace::SetEnabled(true);
    models::BkDdn model(a->model_config);
    core::Trainer trainer(SmallTrainOptions());
    trainer.Train(&model, a->dataset.train(), a->dataset.validation(),
                  synth::Horizon::kInHospital);
    trace::SetEnabled(false);
    Run run;
    for (const ag::NodePtr& param : model.params().all()) {
      run.params.push_back(param->value());
    }
    const std::vector<trace::ThreadSnapshot> snapshot = trace::Snapshot();
    run.stages = trace::AggregateByName(snapshot);
    for (const trace::ThreadSnapshot& thread : snapshot) {
      run.dropped += thread.dropped;
    }
    return run;
  };

  const Run first = train_traced();
  const Run second = train_traced();

  // Identical span structure: same stages, same count per stage, none lost.
  EXPECT_EQ(first.dropped, 0u);
  EXPECT_EQ(second.dropped, 0u);
  ASSERT_FALSE(first.stages.empty());
  ASSERT_EQ(first.stages.size(), second.stages.size());
  for (const auto& [name, stats] : first.stages) {
    ASSERT_EQ(second.stages.count(name), 1u) << name;
    EXPECT_EQ(stats.count, second.stages.at(name).count) << name;
  }
  ASSERT_EQ(first.stages.count("train.forward"), 1u);
  ASSERT_EQ(first.stages.count("train.backward"), 1u);
  ASSERT_EQ(first.stages.count("gemm.block"), 1u);

  // Bitwise-identical weights: tracing never touches the arithmetic.
  ASSERT_EQ(first.params.size(), second.params.size());
  for (size_t i = 0; i < first.params.size(); ++i) {
    ASSERT_TRUE(first.params[i].SameShape(second.params[i]));
    EXPECT_EQ(std::memcmp(first.params[i].data(), second.params[i].data(),
                          first.params[i].size() * sizeof(float)),
              0)
        << "parameter " << i << " diverged under tracing";
  }
}

}  // namespace
}  // namespace kddn
