// Tests for the concurrency substrate: ThreadPool semantics (zero tasks,
// reentrancy, exception transport), bitwise serial/parallel equality of the
// row-blocked tensor kernels, and — the load-bearing guarantee — that
// training is bitwise reproducible at any thread count thanks to the
// chunk-ordered gradient reduction in core::Trainer.
#include "common/thread_pool.h"

#include <atomic>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "gtest/gtest.h"
#include "kb/concept_extractor.h"
#include "kb/knowledge_base.h"
#include "models/bk_ddn.h"
#include "synth/cohort.h"
#include "tensor/tensor_ops.h"

namespace kddn {
namespace {

TEST(ThreadPoolTest, ZeroAndNegativeCountsReturnImmediately) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-3, [&](int64_t) { ++calls; });
  pool.ParallelForBlocked(0, 8, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(17, 0);
  pool.ParallelFor(17, [&](int64_t i) { ++hits[i]; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, BlockedVariantCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  constexpr int kCount = 1001;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelForBlocked(kCount, /*min_block=*/7,
                          [&](int64_t begin, int64_t end) {
                            ASSERT_LT(begin, end);
                            for (int64_t i = begin; i < end; ++i) {
                              hits[i].fetch_add(1, std::memory_order_relaxed);
                            }
                          });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReentrantParallelForRunsInlineAndDrains) {
  // A worker that starts a nested parallel region must not deadlock waiting
  // on the pool it occupies; the nested region serializes on that worker.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(5, [&](int64_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 5);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](int64_t i) {
                         ran.fetch_add(1, std::memory_order_relaxed);
                         if (i == 13) {
                           KDDN_CHECK(false) << "boom at " << i;
                         }
                       }),
      KddnError);
  // Cancellation is cooperative: some iterations may be skipped, none run
  // after the pool drained.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);
}

TEST(ThreadPoolTest, GlobalPoolResizeRoundTrip) {
  const int original = GlobalThreadPoolSize();
  SetGlobalThreadPoolSize(3);
  EXPECT_EQ(GlobalThreadPoolSize(), 3);
  SetGlobalThreadPoolSize(0);  // Restore the hardware default.
  EXPECT_GE(GlobalThreadPoolSize(), 1);
  SetGlobalThreadPoolSize(original);
}

/// The row-blocked parallel kernels keep each output element's accumulation
/// order identical to the serial loops, so results must agree bitwise.
TEST(ParallelTensorOpsTest, MatMulFamilyBitwiseEqualAcrossThreadCounts) {
  Rng rng(77);
  // Big enough to clear the parallel-dispatch work threshold.
  Tensor a = RandomNormal({96, 80}, 0, 1, &rng);
  Tensor b = RandomNormal({80, 72}, 0, 1, &rng);
  Tensor bt = RandomNormal({72, 80}, 0, 1, &rng);
  Tensor at = RandomNormal({80, 96}, 0, 1, &rng);

  SetGlobalThreadPoolSize(1);
  const Tensor serial_ab = MatMul(a, b);
  const Tensor serial_abt = MatMulABt(a, bt);
  const Tensor serial_atb = MatMulAtB(at, b);

  for (int threads : {2, 4}) {
    SetGlobalThreadPoolSize(threads);
    EXPECT_EQ(MaxAbsDiff(MatMul(a, b), serial_ab), 0.0f) << threads;
    EXPECT_EQ(MaxAbsDiff(MatMulABt(a, bt), serial_abt), 0.0f) << threads;
    EXPECT_EQ(MaxAbsDiff(MatMulAtB(at, b), serial_atb), 0.0f) << threads;
  }
  SetGlobalThreadPoolSize(0);
}

/// End-to-end determinism fixture: a small synthetic cohort, BK-DDN trained
/// for 2 epochs at several thread counts, compared bitwise.
class TrainingDeterminismTest : public ::testing::Test {
 protected:
  TrainingDeterminismTest()
      : kb_(kb::KnowledgeBase::BuildDefault()), extractor_(&kb_) {
    synth::CohortConfig config;
    config.num_patients = 150;
    config.seed = 33;
    cohort_ = synth::Cohort::Generate(config, kb_);
    data::DatasetOptions options;
    options.max_words = 64;
    options.max_concepts = 32;
    dataset_ = data::MortalityDataset::Build(cohort_, extractor_, options);
  }

  models::ModelConfig SmallModelConfig() const {
    models::ModelConfig config;
    config.word_vocab_size = dataset_.word_vocab().size();
    config.concept_vocab_size = dataset_.concept_vocab().size();
    config.embedding_dim = 6;
    config.num_filters = 4;
    config.seed = 11;
    return config;
  }

  /// Trains a fresh BK-DDN with `num_threads` and returns (params, auc).
  std::pair<std::vector<Tensor>, double> TrainOnce(int num_threads) {
    models::BkDdn model(SmallModelConfig());
    core::TrainOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.seed = 7;
    options.num_threads = num_threads;
    core::Trainer trainer(options);
    trainer.Train(&model, dataset_.train(), dataset_.validation(),
                  synth::Horizon::kInHospital);
    std::vector<Tensor> params;
    for (const ag::NodePtr& param : model.params().all()) {
      params.push_back(param->value());
    }
    const double auc = core::Trainer::EvaluateAuc(
        &model, dataset_.test(), synth::Horizon::kInHospital);
    return {std::move(params), auc};
  }

  kb::KnowledgeBase kb_;
  kb::ConceptExtractor extractor_;
  synth::Cohort cohort_;
  data::MortalityDataset dataset_;
};

TEST_F(TrainingDeterminismTest, BitwiseIdenticalParamsAtAnyThreadCount) {
  const auto [base_params, base_auc] = TrainOnce(1);
  ASSERT_FALSE(base_params.empty());
  for (int threads : {2, 4}) {
    const auto [params, auc] = TrainOnce(threads);
    ASSERT_EQ(params.size(), base_params.size()) << threads;
    for (size_t i = 0; i < params.size(); ++i) {
      ASSERT_TRUE(params[i].SameShape(base_params[i])) << threads;
      // Bitwise comparison: memcmp over the raw float storage, so even
      // sign-of-zero or last-ulp drift fails loudly.
      EXPECT_EQ(std::memcmp(params[i].data(), base_params[i].data(),
                            params[i].size() * sizeof(float)),
                0)
          << "param " << i << " differs at " << threads << " threads";
    }
    EXPECT_EQ(auc, base_auc) << threads;
  }
}

TEST_F(TrainingDeterminismTest, ScoresIdenticalAcrossGlobalPoolSizes) {
  models::BkDdn model(SmallModelConfig());
  SetGlobalThreadPoolSize(1);
  const std::vector<float> serial =
      core::Trainer::Scores(&model, dataset_.test());
  for (int threads : {2, 4}) {
    SetGlobalThreadPoolSize(threads);
    const std::vector<float> parallel =
        core::Trainer::Scores(&model, dataset_.test());
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "score " << i << " at " << threads;
    }
  }
  SetGlobalThreadPoolSize(0);
}

}  // namespace
}  // namespace kddn
